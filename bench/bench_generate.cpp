// Throughput bench of the generation front end: runs the paper's §5.1-sized
// variant expansion (the 510-variant (Load|Store)+ study) once serially and
// once with --generate-jobs N, reports variants/second and the speedup, and
// checks the parallel output is bit-identical. Then measures the streaming
// producer mode on a small end-to-end exploration: cold wall-clock should
// approach max(generate, measure) instead of the batch path's sum.
//
// Emits BENCH_generate.json for CI's regression gate. The gate is
// core-scaled: the JSON records hardware_concurrency so a 1-core runner is
// gated on bit-identity and absolute throughput only, never on a speedup it
// physically cannot show.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "launcher/explore.hpp"

using namespace microtools;

namespace {

double generateSeconds(int jobs, const std::string& xml,
                       std::vector<creator::GeneratedProgram>& out) {
  creator::MicroCreator mc;
  mc.setGenerateJobs(jobs);
  auto t0 = std::chrono::steady_clock::now();
  out = mc.generateFromText(xml);
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

bool bitIdentical(const std::vector<creator::GeneratedProgram>& a,
                  const std::vector<creator::GeneratedProgram>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].name != b[i].name || a[i].functionName != b[i].functionName ||
        a[i].asmText != b[i].asmText || a[i].cText != b[i].cText ||
        a[i].contentId != b[i].contentId ||
        a[i].arrayCount != b[i].arrayCount) {
      return false;
    }
  }
  return true;
}

double exploreSeconds(launcher::ExploreOptions options) {
  auto t0 = std::chrono::steady_clock::now();
  launcher::runExplore(options);
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  std::string jsonPath = argc > 1 ? argv[1] : "BENCH_generate.json";
  int jobs = argc > 2 ? std::atoi(argv[2]) : 8;
  unsigned cores = std::thread::hardware_concurrency();
  if (cores == 0) cores = 1;

  // The §5.1 workload: (Load|Store)+ over unroll 1..8 — 510 variants, each
  // rendered to assembly and statically verified.
  std::string wide =
      bench::loadStoreKernelXml("movaps", 1, 8, 1, false, /*swapAfter=*/true);

  bench::header(
      "generation front end (serial vs --generate-jobs " +
          std::to_string(jobs) + ")",
      "host (" + std::to_string(cores) + " core(s))",
      "per-kernel emission/verification parallelism gives a >= 3x cold "
      "speedup at 8 jobs on >= 8 cores with bit-identical output");

  std::vector<creator::GeneratedProgram> serial, parallel;
  double serialSeconds = generateSeconds(1, wide, serial);
  double parallelSeconds = generateSeconds(jobs, wide, parallel);
  std::size_t variants = serial.size();
  double speedup = parallelSeconds > 0 ? serialSeconds / parallelSeconds : 0.0;
  bool identical = bitIdentical(serial, parallel);

  std::printf("variants: %zu\n", variants);
  std::printf("serial:   %.3f s  (%.1f variants/s)\n", serialSeconds,
              serialSeconds > 0 ? variants / serialSeconds : 0.0);
  std::printf("jobs=%-3d  %.3f s  (%.1f variants/s)\n", jobs, parallelSeconds,
              parallelSeconds > 0 ? variants / parallelSeconds : 0.0);
  std::printf("speedup: %.2fx on %u core(s)\n", speedup, cores);
  bench::expectShape(identical,
                     "parallel generation bit-identical to serial");
  if (cores >= 8) {
    bench::expectShape(speedup >= 3.0,
                       "generation >= 3x faster at 8 jobs (>= 8 cores)");
  } else {
    // A host with fewer cores than jobs cannot show the full speedup; only
    // the absence of a pathological slowdown is checkable here.
    bench::expectShape(speedup >= 0.5,
                       "parallel generation not pathologically slower on a "
                       "core-starved host");
  }

  // Streaming producer mode on a small exploration: measurement starts on
  // the first verified variant, so the cold wall-clock tends toward
  // max(generate, measure) instead of the batch path's sum.
  launcher::ExploreOptions explore;
  explore.descriptionText = bench::loadStoreKernelXml("movaps", 1, 4, 1);
  explore.useCache = false;
  explore.arrayBytes = 16 * 1024;
  explore.campaign.protocol.innerRepetitions = 1;
  explore.campaign.protocol.outerRepetitions = 3;
  explore.campaign.maxRepetitions = 6;
  explore.generateJobs = jobs;
  double batchSeconds = exploreSeconds(explore);
  explore.stream = true;
  double streamSeconds = exploreSeconds(explore);
  double overlap = streamSeconds > 0 ? batchSeconds / streamSeconds : 0.0;
  std::printf("explore batch:  %.3f s\n", batchSeconds);
  std::printf("explore stream: %.3f s  (overlap ratio %.2fx)\n",
              streamSeconds, overlap);

  std::ofstream json(jsonPath, std::ios::binary);
  json.setf(std::ios::fixed);
  json.precision(6);
  json << "{\n"
       << "  \"variants\": " << variants << ",\n"
       << "  \"jobs\": " << jobs << ",\n"
       << "  \"cores\": " << cores << ",\n"
       << "  \"serial_seconds\": " << serialSeconds << ",\n"
       << "  \"parallel_seconds\": " << parallelSeconds << ",\n"
       << "  \"serial_variants_per_sec\": "
       << (serialSeconds > 0 ? variants / serialSeconds : 0.0) << ",\n"
       << "  \"parallel_variants_per_sec\": "
       << (parallelSeconds > 0 ? variants / parallelSeconds : 0.0) << ",\n"
       << "  \"speedup\": " << speedup << ",\n"
       << "  \"bit_identical\": " << (identical ? "true" : "false") << ",\n"
       << "  \"explore_batch_seconds\": " << batchSeconds << ",\n"
       << "  \"explore_stream_seconds\": " << streamSeconds << ",\n"
       << "  \"stream_overlap_ratio\": " << overlap << ",\n"
       << "  \"env\": " << bench::envJsonObject() << "\n"
       << "}\n";
  std::printf("wrote %s\n", jsonPath.c_str());

  bench::finish();
  // Bit-identity is a hard contract, not a shape expectation: fail the run.
  return identical ? 0 : 1;
}
