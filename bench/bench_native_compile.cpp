// Throughput bench of the native compile path: compiles the same
// loadstore variant set three ways — serial per-variant invocations (the
// pre-batching behavior), batched cold (groups of variants per compiler
// invocation into a fresh compile cache), and a warm-cache rerun — and
// reports variants/second for each, the batched-vs-serial speedup, the
// number of compiler processes the warm rerun spawned (must be zero), and
// whether every kernel computes identical results on all three paths.
//
// Emits BENCH_native_compile.json for CI's regression gate and exits
// non-zero when the warm rerun spawned a process or results diverge.

#include <cstdlib>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "creator/creator.hpp"
#include "native/compile.hpp"

using namespace microtools;

namespace {

constexpr int kBatchSize = 8;  // the campaign's --compile-batch default
constexpr int kTripCount = 1024;

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Runs every kernel once and records its returned iteration count — the
/// cross-path identity check: the same variant must compute the same value
/// whether it was compiled serially, batched, or served from the cache.
std::vector<int> runAll(const std::vector<native::CompiledKernel>& kernels) {
  void* raw = nullptr;
  if (posix_memalign(&raw, 4096, 1 << 20) != 0) {
    throw McError("cannot allocate bench array");
  }
  std::vector<int> iterations;
  iterations.reserve(kernels.size());
  for (const native::CompiledKernel& kernel : kernels) {
    void* arrays[1] = {raw};
    iterations.push_back(kernel.call(kTripCount, arrays, 1));
  }
  std::free(raw);
  return iterations;
}

}  // namespace

int main(int argc, char** argv) {
  std::string jsonPath = argc > 1 ? argv[1] : "BENCH_native_compile.json";

  // loadstore_small.xml-scale batch: one movaps load kernel per unroll
  // factor, the paper's §5.1 sweep shape.
  creator::MicroCreator mc;
  auto programs =
      mc.generateFromText(bench::loadStoreKernelXml("movaps", 1, 24));
  std::vector<launcher::SourceUnit> units;
  for (const creator::GeneratedProgram& p : programs) {
    units.push_back(launcher::SourceUnit{"asm", p.asmText, p.functionName});
  }
  std::size_t variants = units.size();

  bench::header(
      "native compile throughput (serial vs batched vs warm cache)", "host",
      "batching >= 3x variants/sec over per-variant compiles; a warm cache "
      "rerun spawns zero compiler processes with identical kernel results");

  namespace fs = std::filesystem;
  std::string cacheDir =
      (fs::temp_directory_path() /
       ("microtools_bench_socache_" + std::to_string(getpid())))
          .string();
  fs::remove_all(cacheDir);

  // Serial: one compiler invocation per variant, no cache.
  std::uint64_t spawns0 = native::spawnCount();
  double t0 = now();
  std::vector<native::CompiledKernel> serialKernels;
  for (const launcher::SourceUnit& unit : units) {
    serialKernels.push_back(
        native::CompiledKernel(unit.text, unit.kind, unit.functionName));
  }
  double serialSeconds = now() - t0;
  std::uint64_t serialSpawns = native::spawnCount() - spawns0;

  // Batched cold: kBatchSize variants per invocation into a fresh cache.
  auto compileBatched = [&units, &cacheDir] {
    native::CompileBatch batch(native::CompileOptions{cacheDir});
    std::vector<native::CompiledKernel> kernels;
    for (std::size_t begin = 0; begin < units.size(); begin += kBatchSize) {
      std::size_t end = std::min(begin + kBatchSize, units.size());
      std::vector<launcher::SourceUnit> group(units.begin() + begin,
                                              units.begin() + end);
      for (auto& kernel : batch.compile(group)) {
        kernels.push_back(std::move(*kernel));
      }
    }
    return kernels;
  };

  spawns0 = native::spawnCount();
  t0 = now();
  std::vector<native::CompiledKernel> batchedKernels = compileBatched();
  double batchedSeconds = now() - t0;
  std::uint64_t batchedSpawns = native::spawnCount() - spawns0;

  // Warm rerun: same batches, same cache; a fresh process is simulated by
  // dropping the in-memory compiler-identity memo — the persisted
  // compiler.id record must make even the --version probe unnecessary.
  native::clearCompilerIdentityMemo();
  spawns0 = native::spawnCount();
  t0 = now();
  std::vector<native::CompiledKernel> warmKernels = compileBatched();
  double warmSeconds = now() - t0;
  std::uint64_t warmSpawns = native::spawnCount() - spawns0;

  std::vector<int> serialRuns = runAll(serialKernels);
  std::vector<int> batchedRuns = runAll(batchedKernels);
  std::vector<int> warmRuns = runAll(warmKernels);
  bool identical = serialRuns == batchedRuns && serialRuns == warmRuns;

  double serialRate = serialSeconds > 0 ? variants / serialSeconds : 0.0;
  double batchedRate = batchedSeconds > 0 ? variants / batchedSeconds : 0.0;
  double warmRate = warmSeconds > 0 ? variants / warmSeconds : 0.0;
  double coldSpeedup = batchedSeconds > 0 ? serialSeconds / batchedSeconds
                                          : 0.0;

  std::printf("variants: %zu (batch size %d)\n", variants, kBatchSize);
  std::printf("serial:       %.3f s  (%.1f variants/s, %llu spawns)\n",
              serialSeconds, serialRate,
              static_cast<unsigned long long>(serialSpawns));
  std::printf("batched cold: %.3f s  (%.1f variants/s, %llu spawns)\n",
              batchedSeconds, batchedRate,
              static_cast<unsigned long long>(batchedSpawns));
  std::printf("warm cache:   %.3f s  (%.1f variants/s, %llu spawns)\n",
              warmSeconds, warmRate,
              static_cast<unsigned long long>(warmSpawns));
  std::printf("cold speedup: %.2fx\n", coldSpeedup);

  bench::expectShape(coldSpeedup >= 3.0,
                     "batched cold compilation >= 3x variants/sec vs serial");
  bench::expectShape(warmSpawns == 0,
                     "warm-cache rerun performs zero compiler invocations");
  bench::expectShape(identical,
                     "kernel results identical across serial/batched/cached");

  std::ofstream json(jsonPath, std::ios::binary);
  json.setf(std::ios::fixed);
  json.precision(6);
  json << "{\n"
       << "  \"variants\": " << variants << ",\n"
       << "  \"batch_size\": " << kBatchSize << ",\n"
       << "  \"serial_seconds\": " << serialSeconds << ",\n"
       << "  \"batched_seconds\": " << batchedSeconds << ",\n"
       << "  \"warm_seconds\": " << warmSeconds << ",\n"
       << "  \"serial_variants_per_sec\": " << serialRate << ",\n"
       << "  \"batched_variants_per_sec\": " << batchedRate << ",\n"
       << "  \"warm_variants_per_sec\": " << warmRate << ",\n"
       << "  \"serial_spawns\": " << serialSpawns << ",\n"
       << "  \"batched_spawns\": " << batchedSpawns << ",\n"
       << "  \"warm_spawns\": " << warmSpawns << ",\n"
       << "  \"cold_speedup\": " << coldSpeedup << ",\n"
       << "  \"identical_results\": " << (identical ? "true" : "false")
       << ",\n"
       << "  \"env\": " << bench::envJsonObject() << "\n"
       << "}\n";
  std::printf("wrote %s\n", jsonPath.c_str());

  fs::remove_all(cacheDir);
  bench::finish();
  // Zero-spawn warm reruns and cross-path identity are hard contracts.
  return (warmSpawns == 0 && identical) ? 0 : 1;
}
