// Figure 13: average cycles per movaps load (8 loads unrolled) while the
// core frequency is varied, measured with the frequency-invariant rdtsc.
// L1/L2 timings scale with the core clock; L3 and RAM stay constant,
// "proving on-core frequency modifications do not affect the off-core
// frequency" (§5.1).

#include "bench_common.hpp"
#include "launcher/protocol.hpp"
#include "support/csv.hpp"

using namespace microtools;

int main() {
  sim::MachineConfig base = sim::nehalemX5650DualSocket();
  bench::header(
      "Figure 13 - cycles per movaps load vs core frequency",
      base.name,
      "in rdtsc cycles, L1/L2 timings vary with core frequency while L3 and "
      "RAM remain constant (on-core DVFS does not touch the uncore)");

  auto program = bench::generateOne(
      bench::loadStoreKernelXml("movaps", 8, 8));

  const std::vector<double> frequencies{1.60, 1.86, 2.13, 2.40, 2.67};
  // [level][frequency index] -> tsc cycles per load.
  std::map<std::string, std::vector<double>> series;

  csv::Table table({"core_ghz", "level", "tsc_cycles_per_load"});
  for (double ghz : frequencies) {
    sim::MachineConfig machine = base;
    machine.coreGHz = ghz;
    for (const bench::HierarchyLevel& level :
         bench::hierarchyLevels(machine)) {
      launcher::SimBackend backend(machine);
      auto kernel = backend.load(program.asmText, program.functionName);
      launcher::KernelRequest request;
      request.arrays.push_back(launcher::ArraySpec{level.bytes, 4096, 0});
      request.n = static_cast<int>(level.bytes / 16);
      launcher::ProtocolOptions protocol;
      protocol.innerRepetitions = 1;
      protocol.outerRepetitions = 2;
      launcher::Measurement m =
          launcher::measureKernel(backend, *kernel, request, protocol);
      double perLoad = m.cyclesPerIteration.min / 8.0;
      series[level.name].push_back(perLoad);
      table.beginRow().add(ghz, 2).add(level.name).add(perLoad).commit();
    }
  }
  table.write(std::cout);

  auto spread = [](const std::vector<double>& v) {
    double lo = *std::min_element(v.begin(), v.end());
    double hi = *std::max_element(v.begin(), v.end());
    return (hi - lo) / lo;
  };
  // L1 at 1.60 GHz should take ~2.67/1.60 = 1.67x the TSC cycles of 2.67.
  double l1Ratio = series["L1"].front() / series["L1"].back();
  std::printf("L1 tsc ratio (1.60 vs 2.67 GHz): %.2f (clock ratio %.2f)\n",
              l1Ratio, 2.67 / 1.60);
  bench::expectShape(l1Ratio > 1.4,
                     "L1 timing varies with the core frequency");
  bench::expectShape(spread(series["L2"]) > 0.25,
                     "L2 timing varies with the core frequency");
  bench::expectShape(spread(series["L3"]) < 0.20,
                     "L3 timing is (nearly) frequency independent");
  bench::expectShape(spread(series["RAM"]) < 0.20,
                     "RAM timing is (nearly) frequency independent");
  return bench::finish();
}
