#pragma once

// Shared fixtures for the MicroTools test suite: the paper's Figure-6 kernel
// description and small helpers to run the generation pipeline.

#include <string>
#include <vector>

#include "creator/creator.hpp"

namespace microtools::testing {

/// The (Load|Store)+ description of Figure 6 — §5.1's 510-variant study.
inline std::string figure6Xml(int unrollMin = 1, int unrollMax = 8,
                              bool swapAfter = true) {
  std::string swap = swapAfter ? "<swap_after_unroll/>" : "";
  return std::string(R"(<description>
  <benchmark_name>loadstore</benchmark_name>
  <kernel>
    <instruction>
      <operation>movaps</operation>
      <memory><register><name>r1</name></register><offset>0</offset></memory>
      <register><phyName>%xmm</phyName><min>0</min><max>8</max></register>
      )") + swap + R"(
    </instruction>
    <unrolling><min>)" +
         std::to_string(unrollMin) + "</min><max>" +
         std::to_string(unrollMax) + R"(</max></unrolling>
    <induction>
      <register><name>r1</name></register>
      <increment>16</increment>
      <offset>16</offset>
    </induction>
    <induction>
      <register><name>r0</name></register>
      <increment>-1</increment>
      <linked><register><name>r1</name></register></linked>
      <last_induction/>
    </induction>
    <branch_information><label>L6</label><test>jge</test></branch_information>
  </kernel>
</description>)";
}

/// A single-instruction movss load kernel (the §5.2.3 OpenMP workload).
inline std::string movssLoadXml(int unrollMin, int unrollMax,
                                int arrays = 1) {
  std::string instrs;
  for (int a = 0; a < arrays; ++a) {
    instrs += R"(
    <instruction>
      <operation>movss</operation>
      <memory><register><name>p)" +
              std::to_string(a) + R"(</name></register><offset>0</offset></memory>
      <register><phyName>%xmm</phyName><min>0</min><max>8</max></register>
    </instruction>)";
  }
  std::string inductions;
  for (int a = 0; a < arrays; ++a) {
    inductions += R"(
    <induction>
      <register><name>p)" +
                  std::to_string(a) + R"(</name></register>
      <increment>4</increment>
      <offset>4</offset>
    </induction>)";
  }
  return R"(<description>
  <benchmark_name>movss_load</benchmark_name>
  <kernel>)" +
         instrs + R"(
    <unrolling><min>)" +
         std::to_string(unrollMin) + "</min><max>" +
         std::to_string(unrollMax) + R"(</max></unrolling>)" + inductions +
         R"(
    <induction>
      <register><name>r0</name></register>
      <increment>-1</increment>
      <linked><register><name>p0</name></register></linked>
      <last_induction/>
    </induction>
    <branch_information><label>L7</label><test>jge</test></branch_information>
  </kernel>
</description>)";
}

inline std::vector<creator::GeneratedProgram> generate(
    const std::string& xmlText) {
  creator::MicroCreator mc;
  return mc.generateFromText(xmlText);
}

}  // namespace microtools::testing
