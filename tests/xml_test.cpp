#include <gtest/gtest.h>

#include "support/error.hpp"
#include "xml/xml.hpp"

namespace microtools::xml {
namespace {

TEST(Xml, ParsesSimpleElement) {
  Document doc = parse("<root>hello</root>");
  EXPECT_EQ(doc.root().name(), "root");
  EXPECT_EQ(doc.root().trimmedText(), "hello");
}

TEST(Xml, ParsesNestedElements) {
  Document doc = parse("<a><b><c>1</c></b><b>2</b></a>");
  const Node& a = doc.root();
  ASSERT_EQ(a.children().size(), 2u);
  EXPECT_EQ(a.children()[0]->child("c")->trimmedText(), "1");
  EXPECT_EQ(a.children()[1]->trimmedText(), "2");
}

TEST(Xml, SelfClosingElement) {
  Document doc = parse("<a><flag/></a>");
  EXPECT_TRUE(doc.root().hasChild("flag"));
  EXPECT_FALSE(doc.root().hasChild("other"));
}

TEST(Xml, Attributes) {
  Document doc = parse(R"(<a x="1" y='two'/>)");
  EXPECT_EQ(doc.root().attribute("x"), "1");
  EXPECT_EQ(doc.root().attribute("y"), "two");
  EXPECT_FALSE(doc.root().attribute("z"));
}

TEST(Xml, DuplicateAttributeRejected) {
  EXPECT_THROW(parse(R"(<a x="1" x="2"/>)"), ParseError);
}

TEST(Xml, AttributeEntities) {
  Document doc = parse(R"(<a x="&lt;&amp;&gt;"/>)");
  EXPECT_EQ(doc.root().attribute("x"), "<&>");
}

TEST(Xml, TextEntities) {
  Document doc = parse("<a>&lt;min&gt; &amp; &quot;max&quot; &apos;</a>");
  EXPECT_EQ(doc.root().trimmedText(), "<min> & \"max\" '");
}

TEST(Xml, NumericCharacterReferences) {
  Document doc = parse("<a>&#65;&#x42;</a>");
  EXPECT_EQ(doc.root().trimmedText(), "AB");
}

TEST(Xml, InvalidEntityRejected) {
  EXPECT_THROW(parse("<a>&nope;</a>"), ParseError);
  EXPECT_THROW(parse("<a>&#xzz;</a>"), ParseError);
}

TEST(Xml, Comments) {
  Document doc = parse("<a><!-- note --><b/><!-- -- tricky --></a>");
  EXPECT_TRUE(doc.root().hasChild("b"));
}

TEST(Xml, Cdata) {
  Document doc = parse("<a><![CDATA[<not-xml> & raw]]></a>");
  EXPECT_EQ(doc.root().trimmedText(), "<not-xml> & raw");
}

TEST(Xml, XmlDeclarationAndDoctype) {
  Document doc = parse(
      "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      "<!DOCTYPE kernel [<!ELEMENT kernel ANY>]>\n"
      "<kernel/>");
  EXPECT_EQ(doc.root().name(), "kernel");
}

TEST(Xml, ProcessingInstructionSkipped) {
  Document doc = parse("<a><?php echo ?><b/></a>");
  EXPECT_TRUE(doc.root().hasChild("b"));
}

TEST(Xml, MismatchedClosingTagRejected) {
  EXPECT_THROW(parse("<a><b></a></b>"), ParseError);
}

TEST(Xml, UnterminatedElementRejected) {
  EXPECT_THROW(parse("<a><b>"), ParseError);
  EXPECT_THROW(parse("<a"), ParseError);
}

TEST(Xml, ContentAfterRootRejected) {
  EXPECT_THROW(parse("<a/><b/>"), ParseError);
}

TEST(Xml, ErrorsCarryLineNumbers) {
  try {
    parse("<a>\n<b>\n</c>\n</a>");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3u);
  }
}

TEST(Xml, ChildHelpers) {
  Document doc = parse("<k><min>1</min><max>8</max><name>r1</name></k>");
  EXPECT_EQ(doc.root().childInt("min"), 1);
  EXPECT_EQ(doc.root().childInt("max"), 8);
  EXPECT_EQ(doc.root().childText("name"), "r1");
  EXPECT_FALSE(doc.root().childInt("absent"));
  EXPECT_EQ(doc.root().requiredInt("min"), 1);
  EXPECT_THROW(doc.root().requiredInt("absent"), DescriptionError);
  EXPECT_THROW(doc.root().requiredText("absent"), DescriptionError);
}

TEST(Xml, ChildIntRejectsNonInteger) {
  Document doc = parse("<k><min>abc</min></k>");
  EXPECT_THROW(doc.root().childInt("min"), ParseError);
}

TEST(Xml, ChildrenNamedPreservesOrder) {
  Document doc = parse("<k><v>1</v><other/><v>2</v><v>3</v></k>");
  auto values = doc.root().childrenNamed("v");
  ASSERT_EQ(values.size(), 3u);
  EXPECT_EQ(values[0]->trimmedText(), "1");
  EXPECT_EQ(values[2]->trimmedText(), "3");
}

TEST(Xml, MixedTextConcatenates) {
  Document doc = parse("<a>one<b/>two</a>");
  EXPECT_EQ(doc.root().trimmedText(), "onetwo");
}

TEST(Xml, ToStringRoundTrips) {
  const char* source =
      "<description><kernel deep=\"true\"><min>1</min></kernel>"
      "</description>";
  Document doc = parse(source);
  Document again = parse(doc.root().toString());
  EXPECT_EQ(again.root().name(), "description");
  EXPECT_EQ(again.root().child("kernel")->attribute("deep"), "true");
  EXPECT_EQ(again.root().child("kernel")->childInt("min"), 1);
}

TEST(Xml, EscapeCoversSpecials) {
  EXPECT_EQ(escape("<a & 'b' \"c\">"),
            "&lt;a &amp; &apos;b&apos; &quot;c&quot;&gt;");
}

TEST(Xml, ParseFileMissingThrows) {
  EXPECT_THROW(parseFile("/nonexistent/path.xml"), McError);
}

TEST(Xml, WhitespaceAroundRootAccepted) {
  Document doc = parse("\n\n  <a/>  \n");
  EXPECT_EQ(doc.root().name(), "a");
}

// The Figure-6 description from the paper parses intact.
TEST(Xml, PaperFigureSixParses) {
  const char* fig6 = R"(
<kernel>
  <instruction>
    <operation>movaps</operation>
    <memory>
      <register><name>r1</name></register>
      <offset>0</offset>
    </memory>
    <register>
      <phyName>%xmm</phyName>
      <min>0</min>
      <max>8</max>
    </register>
    <swap_after_unroll/>
  </instruction>
  <unrolling><min>1</min><max>8</max></unrolling>
  <induction>
    <register><name>r1</name></register>
    <increment>16</increment>
    <offset>16</offset>
  </induction>
  <induction>
    <register><name>r0</name></register>
    <increment>-1</increment>
    <linked><register><name>r1</name></register></linked>
    <last_induction/>
  </induction>
  <branch_information><label>L6</label><test>jge</test></branch_information>
</kernel>)";
  Document doc = parse(fig6);
  EXPECT_EQ(doc.root().name(), "kernel");
  EXPECT_EQ(doc.root().childrenNamed("induction").size(), 2u);
  const Node* instr = doc.root().child("instruction");
  ASSERT_NE(instr, nullptr);
  EXPECT_TRUE(instr->hasChild("swap_after_unroll"));
  EXPECT_EQ(instr->child("register")->childText("phyName"), "%xmm");
}

// Parameterized sweep: malformed inputs all raise ParseError.
class XmlRejects : public ::testing::TestWithParam<const char*> {};

TEST_P(XmlRejects, Throws) {
  EXPECT_THROW(parse(GetParam()), ParseError);
}

INSTANTIATE_TEST_SUITE_P(
    MalformedCorpus, XmlRejects,
    ::testing::Values("", "   ", "<", "<>", "<a", "<a b></a>", "<a x=1/>",
                      "<a><![CDATA[open</a>", "<a>&unterminated</a>",
                      "<a></b>", "text-only", "<1tag/>",
                      "<a><!-- unterminated </a>"));

// Parameterized sweep: well-formed inputs parse and report the root name.
struct OkCase {
  const char* text;
  const char* root;
};

class XmlAccepts : public ::testing::TestWithParam<OkCase> {};

TEST_P(XmlAccepts, Parses) {
  Document doc = parse(GetParam().text);
  EXPECT_EQ(doc.root().name(), GetParam().root);
}

INSTANTIATE_TEST_SUITE_P(
    WellFormedCorpus, XmlAccepts,
    ::testing::Values(OkCase{"<a/>", "a"}, OkCase{"<a></a>", "a"},
                      OkCase{"<a-b.c_d/>", "a-b.c_d"},
                      OkCase{"<_priv/>", "_priv"},
                      OkCase{"<ns:tag/>", "ns:tag"},
                      OkCase{"<a >spaced</a >", "a"},
                      OkCase{"<a\n x=\"1\"\n/>", "a"}));

}  // namespace
}  // namespace microtools::xml
