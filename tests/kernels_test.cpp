#include <gtest/gtest.h>

#include "asmparse/asmparse.hpp"
#include "creator/creator.hpp"
#include "kernels/matmul.hpp"
#include "native/compile.hpp"
#include "sim/core.hpp"
#include "support/error.hpp"

namespace microtools::kernels {
namespace {

TEST(NaiveMatmul, ComputesCorrectProduct) {
  // 2x2: B = [[1,2],[3,4]], C = [[5,6],[7,8]] -> A = [[19,22],[43,50]].
  std::vector<double> b{1, 2, 3, 4}, c{5, 6, 7, 8}, a(4, -1.0);
  naiveMatmul(2, b.data(), c.data(), a.data());
  EXPECT_DOUBLE_EQ(a[0], 19.0);
  EXPECT_DOUBLE_EQ(a[1], 22.0);
  EXPECT_DOUBLE_EQ(a[2], 43.0);
  EXPECT_DOUBLE_EQ(a[3], 50.0);
}

TEST(NaiveMatmul, IdentityIsNeutral) {
  int n = 5;
  std::vector<double> b(static_cast<std::size_t>(n) * n, 0.0);
  std::vector<double> c(static_cast<std::size_t>(n) * n, 0.0);
  std::vector<double> a(static_cast<std::size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i) {
    b[static_cast<std::size_t>(i) * n + i] = 1.0;  // B = I
    for (int j = 0; j < n; ++j) {
      c[static_cast<std::size_t>(i) * n + j] = i * 10.0 + j;
    }
  }
  naiveMatmul(n, b.data(), c.data(), a.data());
  EXPECT_EQ(a, c);
}

TEST(NaiveMatmul, CSourceCompilesAndMatchesReference) {
  native::CompiledKernel kernel(naiveMatmulCSource(), "c", "multiplySingle");
  int n = 8;
  std::vector<double> a(static_cast<std::size_t>(n) * n, 0.0);
  std::vector<double> b(static_cast<std::size_t>(n) * n);
  std::vector<double> c(static_cast<std::size_t>(n) * n);
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = static_cast<double>(i % 7) - 3.0;
    c[i] = static_cast<double>(i % 5) + 0.5;
  }
  void* ptrs[3] = {a.data(), b.data(), c.data()};
  EXPECT_EQ(kernel.call(n, ptrs, 3), n);
  std::vector<double> expected(a.size(), 0.0);
  naiveMatmul(n, b.data(), c.data(), expected.data());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], expected[i], 1e-9) << i;
  }
}

TEST(InnerKernelAsm, ParsesAndHasFigure2Structure) {
  std::string text = matmulInnerKernelAsm(1, 1600);
  asmparse::Program p = asmparse::parseAssembly(text);
  EXPECT_EQ(p.functionName, "matmul_kernel");
  // load, mul (with memory), add, store present.
  bool sawMovsdLoad = false, sawMulsd = false, sawAddsd = false,
       sawStore = false;
  for (const auto& insn : p.instructions) {
    if (insn.mnemonic == "movsd" && insn.readsMemory()) sawMovsdLoad = true;
    if (insn.mnemonic == "mulsd" && insn.readsMemory()) sawMulsd = true;
    if (insn.mnemonic == "addsd") sawAddsd = true;
    if (insn.mnemonic == "movsd" && insn.writesMemory()) sawStore = true;
  }
  EXPECT_TRUE(sawMovsdLoad);
  EXPECT_TRUE(sawMulsd);
  EXPECT_TRUE(sawAddsd);
  EXPECT_TRUE(sawStore);
}

TEST(InnerKernelAsm, UnrollBoundsEnforced) {
  EXPECT_THROW(matmulInnerKernelAsm(0, 1600), McError);
  EXPECT_THROW(matmulInnerKernelAsm(8, 1600), McError);
  EXPECT_NO_THROW(matmulInnerKernelAsm(7, 1600));
}

TEST(InnerKernelAsm, ExecutesNativelyWithCorrectResult) {
  // With unroll 1 the kernel computes an exact dot-product-with-running-
  // store; check the final *res value natively.
  int n = 64;
  std::string text = matmulInnerKernelAsm(1, 8);  // C stride 8: contiguous
  native::CompiledKernel kernel(text, "asm", "matmul_kernel");
  std::vector<double> bRow(static_cast<std::size_t>(n), 2.0);
  std::vector<double> cCol(static_cast<std::size_t>(n), 3.0);
  double res = -1.0;
  void* ptrs[3] = {bRow.data(), cCol.data(), &res};
  int iterations = kernel.call(n, ptrs, 3);
  EXPECT_EQ(iterations, n);
  EXPECT_DOUBLE_EQ(res, 2.0 * 3.0 * n);
}

TEST(InnerKernelXml, GeneratesMatchingVariants) {
  creator::MicroCreator mc;
  auto programs = mc.generateFromText(matmulInnerKernelXml(1, 4, 1600));
  ASSERT_EQ(programs.size(), 4u);
  for (const auto& p : programs) {
    EXPECT_EQ(p.functionName, "matmul_kernel");
    EXPECT_EQ(p.arrayCount, 3);
    EXPECT_NO_THROW(asmparse::parseAssembly(p.asmText));
  }
}

TEST(Study, InCacheSizesAreFast) {
  auto cfg = sim::nehalemX5650DualSocket();
  MatmulStudyOptions small;
  small.n = 64;
  MatmulStudyResult r = runMatmulStudy(cfg, small);
  EXPECT_GT(r.cyclesPerKIteration, 1.0);
  EXPECT_LT(r.cyclesPerKIteration, 8.0);
  EXPECT_GT(r.measuredIterations, 0u);
}

TEST(Study, CyclesGrowWithMatrixSize) {
  auto cfg = sim::nehalemX5650DualSocket();
  MatmulStudyOptions a, b;
  a.n = 100;
  b.n = 500;
  double smallCycles = runMatmulStudy(cfg, a).cyclesPerKIteration;
  double largeCycles = runMatmulStudy(cfg, b).cyclesPerKIteration;
  EXPECT_GT(largeCycles, smallCycles * 1.5);
}

TEST(Study, UnrollingImprovesInCachePerformance) {
  auto cfg = sim::nehalemX5650DualSocket();
  MatmulStudyOptions u1, u4;
  u1.n = u4.n = 200;
  u1.unroll = 1;
  u4.unroll = 4;
  double base = runMatmulStudy(cfg, u1).cyclesPerKIteration;
  double unrolled = runMatmulStudy(cfg, u4).cyclesPerKIteration;
  EXPECT_LT(unrolled, base);
}

TEST(Study, ValidatesSize) {
  auto cfg = sim::nehalemX5650DualSocket();
  MatmulStudyOptions tiny;
  tiny.n = 4;
  EXPECT_THROW(runMatmulStudy(cfg, tiny), McError);
}

}  // namespace
}  // namespace microtools::kernels
