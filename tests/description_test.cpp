#include <gtest/gtest.h>

#include "creator/description.hpp"
#include "support/error.hpp"
#include "test_helpers.hpp"

namespace microtools::creator {
namespace {

TEST(Description, ParsesFigureSix) {
  Description d = parseDescriptionText(testing::figure6Xml());
  EXPECT_EQ(d.benchmarkName, "loadstore");
  ASSERT_EQ(d.kernel.body.size(), 1u);
  const ir::Instruction& instr = d.kernel.body[0];
  EXPECT_EQ(instr.operation, "movaps");
  EXPECT_TRUE(instr.swapAfterUnroll);
  ASSERT_EQ(instr.operands.size(), 2u);
  EXPECT_TRUE(ir::isMemory(instr.operands[0]));
  EXPECT_TRUE(ir::isRegister(instr.operands[1]));
  const auto& reg = std::get<ir::RegOperand>(instr.operands[1]);
  EXPECT_TRUE(reg.isRotating());
  EXPECT_EQ(reg.rotateMin, 0);
  EXPECT_EQ(reg.rotateMax, 8);
  EXPECT_EQ(d.kernel.unrollMin, 1);
  EXPECT_EQ(d.kernel.unrollMax, 8);
  ASSERT_EQ(d.kernel.inductions.size(), 2u);
  EXPECT_EQ(d.kernel.inductions[0].increment, 16);
  EXPECT_EQ(d.kernel.inductions[0].offsetStep, 16);
  EXPECT_EQ(d.kernel.inductions[1].linkedTo, "r1");
  EXPECT_TRUE(d.kernel.inductions[1].lastInduction);
  EXPECT_EQ(d.kernel.branch.label, "L6");
  EXPECT_EQ(d.kernel.branch.test, "jge");
}

TEST(Description, BareKernelRootAccepted) {
  Description d = parseDescriptionText(
      R"(<kernel>
           <instruction><operation>nop</operation></instruction>
           <induction><register><name>r0</name></register>
             <increment>-1</increment><last_induction/></induction>
           <branch_information><label>L1</label><test>jge</test>
           </branch_information>
         </kernel>)");
  EXPECT_EQ(d.benchmarkName, "kernel");
  EXPECT_EQ(d.kernel.body.size(), 1u);
}

TEST(Description, TopLevelOptions) {
  Description d = parseDescriptionText(
      R"(<description>
           <benchmark_name>bn</benchmark_name>
           <function_name>fn</function_name>
           <maximum_benchmarks>5</maximum_benchmarks>
           <seed>99</seed>
           <emit_c/>
           <schedule>interleave</schedule>
           <kernel>
             <instruction><operation>nop</operation></instruction>
           </kernel>
         </description>)");
  EXPECT_EQ(d.benchmarkName, "bn");
  EXPECT_EQ(d.functionName, "fn");
  EXPECT_EQ(d.maximumBenchmarks, 5u);
  EXPECT_EQ(d.seed, 99u);
  EXPECT_TRUE(d.emitC);
  EXPECT_EQ(d.schedule, "interleave");
}

TEST(Description, OperationChoicesCollected) {
  Description d = parseDescriptionText(
      R"(<kernel><instruction>
           <operation>movss</operation>
           <operation>movaps</operation>
           <random_choice/>
         </instruction></kernel>)");
  const ir::Instruction& instr = d.kernel.body[0];
  EXPECT_TRUE(instr.operation.empty());
  EXPECT_EQ(instr.operationChoices,
            (std::vector<std::string>{"movss", "movaps"}));
  EXPECT_TRUE(instr.chooseRandomly);
}

TEST(Description, MoveSemanticsParsed) {
  Description d = parseDescriptionText(
      R"(<kernel><instruction>
           <move_semantic><bytes>16</bytes><aligned/><unaligned/></move_semantic>
           <memory><register><name>r1</name></register></memory>
           <register><phyName>%xmm0</phyName></register>
         </instruction></kernel>)");
  const ir::Instruction& instr = d.kernel.body[0];
  ASSERT_TRUE(instr.semantics);
  EXPECT_EQ(instr.semantics->bytes, 16);
  EXPECT_TRUE(instr.semantics->tryAligned);
  EXPECT_TRUE(instr.semantics->tryUnaligned);
}

TEST(Description, MoveSemanticsRejectsBadBytes) {
  EXPECT_THROW(parseDescriptionText(
                   R"(<kernel><instruction>
                        <move_semantic><bytes>12</bytes></move_semantic>
                      </instruction></kernel>)"),
               DescriptionError);
}

TEST(Description, OperationAndSemanticsMutuallyExclusive) {
  EXPECT_THROW(parseDescriptionText(
                   R"(<kernel><instruction>
                        <operation>movss</operation>
                        <move_semantic><bytes>4</bytes></move_semantic>
                      </instruction></kernel>)"),
               DescriptionError);
}

TEST(Description, ImmediateSingleValue) {
  Description d = parseDescriptionText(
      R"(<kernel><instruction>
           <operation>add</operation>
           <immediate><value>8</value></immediate>
           <register><name>r1</name></register>
         </instruction></kernel>)");
  const auto& imm = std::get<ir::ImmOperand>(d.kernel.body[0].operands[0]);
  EXPECT_EQ(imm.value, 8);
  EXPECT_TRUE(imm.choices.empty());
}

TEST(Description, ImmediateRange) {
  Description d = parseDescriptionText(
      R"(<kernel><instruction>
           <operation>add</operation>
           <immediate><min>0</min><max>16</max><step>8</step></immediate>
           <register><name>r1</name></register>
         </instruction></kernel>)");
  const auto& imm = std::get<ir::ImmOperand>(d.kernel.body[0].operands[0]);
  EXPECT_EQ(imm.choices, (std::vector<std::int64_t>{0, 8, 16}));
}

TEST(Description, ImmediateValueList) {
  Description d = parseDescriptionText(
      R"(<kernel><instruction>
           <operation>add</operation>
           <immediate><value>1</value><value>4</value></immediate>
           <register><name>r1</name></register>
         </instruction></kernel>)");
  const auto& imm = std::get<ir::ImmOperand>(d.kernel.body[0].operands[0]);
  EXPECT_EQ(imm.choices, (std::vector<std::int64_t>{1, 4}));
}

TEST(Description, ImmediateRequiresContent) {
  EXPECT_THROW(parseDescriptionText(
                   R"(<kernel><instruction>
                        <operation>add</operation>
                        <immediate></immediate>
                        <register><name>r1</name></register>
                      </instruction></kernel>)"),
               DescriptionError);
}

TEST(Description, MemoryWithIndexScale) {
  Description d = parseDescriptionText(
      R"(<kernel><instruction>
           <operation>movsd</operation>
           <memory>
             <register><name>r1</name></register>
             <index><name>r2</name></index>
             <scale>8</scale>
             <offset>-16</offset>
           </memory>
           <register><phyName>%xmm0</phyName></register>
         </instruction></kernel>)");
  const auto& mem = std::get<ir::MemOperand>(d.kernel.body[0].operands[0]);
  EXPECT_EQ(mem.offset, -16);
  ASSERT_TRUE(mem.index);
  EXPECT_EQ(mem.index->logicalName, "r2");
  EXPECT_EQ(mem.scale, 8);
}

TEST(Description, BadScaleRejected) {
  EXPECT_THROW(parseDescriptionText(
                   R"(<kernel><instruction>
                        <operation>movsd</operation>
                        <memory>
                          <register><name>r1</name></register>
                          <index><name>r2</name></index>
                          <scale>3</scale>
                        </memory>
                        <register><phyName>%xmm0</phyName></register>
                      </instruction></kernel>)"),
               DescriptionError);
}

TEST(Description, StrideChoices) {
  Description d = parseDescriptionText(
      R"(<kernel>
           <instruction><operation>nop</operation></instruction>
           <induction>
             <register><name>r1</name></register>
             <increment>4</increment>
             <increment>8</increment>
           </induction>
         </kernel>)");
  EXPECT_EQ(d.kernel.inductions[0].strideChoices,
            (std::vector<std::int64_t>{4, 8}));
}

TEST(Description, StrideRange) {
  Description d = parseDescriptionText(
      R"(<kernel>
           <instruction><operation>nop</operation></instruction>
           <induction>
             <register><name>r1</name></register>
             <stride><min>4</min><max>12</max><step>4</step></stride>
           </induction>
         </kernel>)");
  EXPECT_EQ(d.kernel.inductions[0].strideChoices,
            (std::vector<std::int64_t>{4, 8, 12}));
}

TEST(Description, InductionPhysicalRegister) {
  // Figure 9: the %eax iteration counter.
  Description d = parseDescriptionText(
      R"(<kernel>
           <instruction><operation>nop</operation></instruction>
           <induction>
             <register><phyName>%eax</phyName></register>
             <increment>1</increment>
             <not_affected_unroll/>
           </induction>
         </kernel>)");
  const ir::InductionVar& iv = d.kernel.inductions[0];
  ASSERT_TRUE(iv.reg.phys);
  EXPECT_EQ(iv.reg.phys->index, isa::kRax);
  EXPECT_TRUE(iv.notAffectedByUnroll);
}

TEST(Description, ElementSizeParsed) {
  Description d = parseDescriptionText(
      R"(<kernel>
           <instruction><operation>nop</operation></instruction>
           <induction>
             <register><name>r0</name></register>
             <increment>-1</increment>
             <element_size>8</element_size>
           </induction>
         </kernel>)");
  EXPECT_EQ(d.kernel.inductions[0].elementSize, 8);
}

TEST(Description, RejectsUnknownRoot) {
  EXPECT_THROW(parseDescriptionText("<benchmarks/>"), DescriptionError);
}

TEST(Description, RejectsDescriptionWithoutKernel) {
  EXPECT_THROW(parseDescriptionText("<description/>"), DescriptionError);
}

TEST(Description, RejectsInstructionWithoutOperation) {
  EXPECT_THROW(parseDescriptionText(
                   "<kernel><instruction/></kernel>"),
               DescriptionError);
}

TEST(Description, RejectsInductionWithoutRegister) {
  EXPECT_THROW(parseDescriptionText(
                   R"(<kernel>
                        <instruction><operation>nop</operation></instruction>
                        <induction><increment>1</increment></induction>
                      </kernel>)"),
               DescriptionError);
}

TEST(Description, RejectsBothSwaps) {
  EXPECT_THROW(parseDescriptionText(
                   R"(<kernel><instruction>
                        <operation>movss</operation>
                        <memory><register><name>r1</name></register></memory>
                        <register><phyName>%xmm0</phyName></register>
                        <swap_before_unroll/><swap_after_unroll/>
                      </instruction></kernel>)"),
               DescriptionError);
}

TEST(Description, RejectsBadRepeat) {
  EXPECT_THROW(parseDescriptionText(
                   R"(<kernel><instruction>
                        <operation>nop</operation>
                        <repeat><min>3</min><max>2</max></repeat>
                      </instruction></kernel>)"),
               DescriptionError);
}

TEST(Description, RejectsBadSchedule) {
  EXPECT_THROW(parseDescriptionText(
                   R"(<description><schedule>random</schedule>
                      <kernel><instruction><operation>nop</operation>
                      </instruction></kernel></description>)"),
               DescriptionError);
}

TEST(Description, RejectsUnknownPhysicalRegister) {
  EXPECT_THROW(parseDescriptionText(
                   R"(<kernel><instruction>
                        <operation>mov</operation>
                        <register><phyName>%zmm1</phyName></register>
                        <register><name>r1</name></register>
                      </instruction></kernel>)"),
               DescriptionError);
}

}  // namespace
}  // namespace microtools::creator
