#include <gtest/gtest.h>

#include "isa/instructions.hpp"
#include "isa/registers.hpp"
#include "support/error.hpp"

namespace microtools::isa {
namespace {

// ---------------------------------------------------------------------------
// registers
// ---------------------------------------------------------------------------

TEST(Registers, ParseCanonical64BitNames) {
  auto r = parseRegister("%rax");
  ASSERT_TRUE(r);
  EXPECT_EQ(r->cls, RegClass::Gpr);
  EXPECT_EQ(r->index, kRax);
  EXPECT_EQ(r->widthBits, 64);
}

TEST(Registers, ParseWithoutPercent) {
  auto r = parseRegister("rsi");
  ASSERT_TRUE(r);
  EXPECT_EQ(r->index, kRsi);
}

TEST(Registers, ParseSubRegisters) {
  EXPECT_EQ(parseRegister("%eax")->widthBits, 32);
  EXPECT_EQ(parseRegister("%ax")->widthBits, 16);
  EXPECT_EQ(parseRegister("%al")->widthBits, 8);
  EXPECT_EQ(parseRegister("%r10d")->widthBits, 32);
  EXPECT_EQ(parseRegister("%r10d")->index, kR10);
  EXPECT_EQ(parseRegister("%sil")->index, kRsi);
}

TEST(Registers, ParseXmm) {
  auto r = parseRegister("%xmm7");
  ASSERT_TRUE(r);
  EXPECT_EQ(r->cls, RegClass::Xmm);
  EXPECT_EQ(r->index, 7);
  EXPECT_EQ(r->widthBits, 128);
}

TEST(Registers, ParseRip) {
  EXPECT_EQ(parseRegister("%rip")->cls, RegClass::Rip);
}

TEST(Registers, ParseRejectsUnknown) {
  EXPECT_FALSE(parseRegister("%zmm0"));
  EXPECT_FALSE(parseRegister("%xmm16"));
  EXPECT_FALSE(parseRegister("%foo"));
  EXPECT_FALSE(parseRegister(""));
  EXPECT_FALSE(parseRegister("%"));
}

TEST(Registers, SameArchRegIgnoresWidth) {
  EXPECT_TRUE(parseRegister("%eax")->sameArchReg(*parseRegister("%rax")));
  EXPECT_FALSE(parseRegister("%eax")->sameArchReg(*parseRegister("%ebx")));
  EXPECT_FALSE(parseRegister("%xmm0")->sameArchReg(*parseRegister("%rax")));
}

TEST(Registers, ArgumentRegistersFollowSysV) {
  EXPECT_EQ(registerName(argumentRegister(0)), "%rdi");
  EXPECT_EQ(registerName(argumentRegister(1)), "%rsi");
  EXPECT_EQ(registerName(argumentRegister(2)), "%rdx");
  EXPECT_EQ(registerName(argumentRegister(3)), "%rcx");
  EXPECT_EQ(registerName(argumentRegister(4)), "%r8");
  EXPECT_EQ(registerName(argumentRegister(5)), "%r9");
  EXPECT_THROW(argumentRegister(6), McError);
  EXPECT_THROW(argumentRegister(-1), McError);
}

TEST(Registers, ScratchRegistersAvoidRaxAndCalleeSaved) {
  for (int i = 0; i < kNumScratchRegisters; ++i) {
    PhysReg r = scratchRegister(i);
    EXPECT_NE(r.index, kRax);
    EXPECT_NE(r.index, kRbx);
    EXPECT_NE(r.index, kRbp);
    EXPECT_NE(r.index, kRsp);
    EXPECT_LT(r.index, 12);  // r12-r15 are callee-saved
  }
  EXPECT_THROW(scratchRegister(kNumScratchRegisters), McError);
}

TEST(Registers, ConstructorsValidate) {
  EXPECT_THROW(gpr(16), McError);
  EXPECT_THROW(gpr(-1), McError);
  EXPECT_THROW(xmm(16), McError);
  EXPECT_THROW(registerName(PhysReg{RegClass::Gpr, 3, 7}), McError);
}

// Round-trip property over every register name at every width.
class RegisterRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(RegisterRoundTrip, GprNameParsesBack) {
  int index = GetParam();
  for (int width : {8, 16, 32, 64}) {
    PhysReg reg = gpr(index, width);
    auto parsed = parseRegister(registerName(reg));
    ASSERT_TRUE(parsed) << registerName(reg);
    EXPECT_EQ(*parsed, reg);
  }
}

TEST_P(RegisterRoundTrip, XmmNameParsesBack) {
  PhysReg reg = xmm(GetParam());
  auto parsed = parseRegister(registerName(reg));
  ASSERT_TRUE(parsed);
  EXPECT_EQ(*parsed, reg);
}

INSTANTIATE_TEST_SUITE_P(AllIndices, RegisterRoundTrip,
                         ::testing::Range(0, 16));

// ---------------------------------------------------------------------------
// instruction table
// ---------------------------------------------------------------------------

TEST(Instructions, LooksUpMoves) {
  const InstrDesc* d = findInstruction("movaps");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->kind, InstrKind::Move);
  EXPECT_EQ(d->memBytes, 16);
  EXPECT_TRUE(d->requiresAlignment);
  EXPECT_TRUE(d->isVector);
}

TEST(Instructions, MovssIsFourBytesUnaligned) {
  const InstrDesc* d = findInstruction("movss");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->memBytes, 4);
  EXPECT_FALSE(d->requiresAlignment);
}

TEST(Instructions, SuffixStripping) {
  EXPECT_EQ(findInstruction("addq"), findInstruction("add"));
  EXPECT_EQ(findInstruction("subl"), findInstruction("sub"));
  EXPECT_EQ(findInstruction("movq"), findInstruction("mov"));
  EXPECT_EQ(findInstruction("cmpl"), findInstruction("cmp"));
}

TEST(Instructions, SuffixOnlyForSuffixable) {
  // "movapsq" is not a real instruction; movaps is not suffixable.
  EXPECT_EQ(findInstruction("movapsq"), nullptr);
  // movslq resolves exactly, not via suffix stripping.
  ASSERT_NE(findInstruction("movslq"), nullptr);
}

TEST(Instructions, UnknownMnemonicsReturnNull) {
  EXPECT_EQ(findInstruction("vfmadd231ps"), nullptr);
  EXPECT_EQ(findInstruction(""), nullptr);
  EXPECT_EQ(findInstruction("xyz"), nullptr);
}

TEST(Instructions, BranchConditionsMapped) {
  EXPECT_EQ(findInstruction("jge")->condition, Condition::GE);
  EXPECT_EQ(findInstruction("jne")->condition, Condition::NE);
  EXPECT_EQ(findInstruction("jz")->condition, Condition::E);
  EXPECT_EQ(findInstruction("jmp")->condition, Condition::None);
}

TEST(Instructions, KindIsBranch) {
  EXPECT_TRUE(kindIsBranch(InstrKind::CondBranch));
  EXPECT_TRUE(kindIsBranch(InstrKind::Jump));
  EXPECT_TRUE(kindIsBranch(InstrKind::Ret));
  EXPECT_FALSE(kindIsBranch(InstrKind::Move));
  EXPECT_FALSE(kindIsBranch(InstrKind::IntAlu));
}

TEST(Instructions, FpLatenciesAreOrdered) {
  // Nehalem: add (3) < mulss (4) <= mulsd (5) << divsd (~22).
  EXPECT_LT(findInstruction("addsd")->latency,
            findInstruction("mulsd")->latency);
  EXPECT_LT(findInstruction("mulsd")->latency,
            findInstruction("divsd")->latency);
}

TEST(Instructions, TableHasNoDuplicates) {
  const auto& table = instructionTable();
  for (std::size_t i = 0; i < table.size(); ++i) {
    for (std::size_t j = i + 1; j < table.size(); ++j) {
      EXPECT_NE(table[i].mnemonic, table[j].mnemonic);
    }
  }
}

TEST(Instructions, EveryTableEntryFindsItself) {
  for (const InstrDesc& d : instructionTable()) {
    EXPECT_EQ(findInstructionExact(d.mnemonic), &d);
  }
}

// ---------------------------------------------------------------------------
// move semantics (§3.1)
// ---------------------------------------------------------------------------

TEST(MoveCandidates, FourBytesIsMovss) {
  EXPECT_EQ(moveCandidates(4, true), (std::vector<std::string>{"movss"}));
}

TEST(MoveCandidates, EightBytesIsMovsd) {
  EXPECT_EQ(moveCandidates(8, true), (std::vector<std::string>{"movsd"}));
}

TEST(MoveCandidates, SixteenAligned) {
  EXPECT_EQ(moveCandidates(16, true),
            (std::vector<std::string>{"movaps", "movapd"}));
  EXPECT_EQ(moveCandidates(16, true, false),
            (std::vector<std::string>{"movaps"}));
}

TEST(MoveCandidates, SixteenUnaligned) {
  EXPECT_EQ(moveCandidates(16, false),
            (std::vector<std::string>{"movups", "movupd"}));
}

TEST(MoveCandidates, UnsupportedWidthThrows) {
  EXPECT_THROW(moveCandidates(3, true), McError);
  EXPECT_THROW(moveCandidates(32, true), McError);
}

// ---------------------------------------------------------------------------
// port-level cost metadata audit
// ---------------------------------------------------------------------------

// The static cost model relies on every table entry carrying complete cost
// metadata (uops + execution unit + latency + reciprocal throughput) or an
// explicit `unmodeled` flag — never a silent half-filled entry the analyzer
// would price wrong.
TEST(Instructions, EveryEntryIsCostModeledOrExplicitlyUnmodeled) {
  for (const InstrDesc& d : instructionTable()) {
    if (d.unmodeled) continue;  // explicit opt-out is the accepted alternative
    EXPECT_GE(d.latency, 1) << d.mnemonic;
    EXPECT_GE(d.uops, 0) << d.mnemonic;
    EXPECT_GE(d.recipThroughput, 1.0) << d.mnemonic;
    // Dispatch-slot-only instructions (no execution port) are exactly the
    // uops == 0 entries, and only ret/nop qualify.
    EXPECT_EQ(d.uops == 0, d.unit == ExecUnit::None) << d.mnemonic;
    if (d.uops == 0) {
      EXPECT_TRUE(d.kind == InstrKind::Ret || d.kind == InstrKind::Nop)
          << d.mnemonic;
    }
  }
}

// The execution unit must agree with the instruction kind the simulator
// dispatches on — a mismatch would make the static port pressure diverge
// from what the sim core actually schedules.
TEST(Instructions, ExecUnitMatchesSimulatorDispatchKind) {
  for (const InstrDesc& d : instructionTable()) {
    if (d.unmodeled) continue;
    switch (d.kind) {
      case InstrKind::FpAdd:
        EXPECT_EQ(d.unit, ExecUnit::FpAdd) << d.mnemonic;
        break;
      case InstrKind::FpMul:
        EXPECT_EQ(d.unit, ExecUnit::FpMul) << d.mnemonic;
        break;
      case InstrKind::FpDiv:
        EXPECT_EQ(d.unit, ExecUnit::FpDiv) << d.mnemonic;
        // Unpipelined divider: the micro-op occupies the shared FpMul port
        // for its full latency, exactly as the simulator schedules it.
        EXPECT_EQ(d.recipThroughput, static_cast<double>(d.latency))
            << d.mnemonic;
        break;
      case InstrKind::CondBranch:
      case InstrKind::Jump:
        EXPECT_EQ(d.unit, ExecUnit::Branch) << d.mnemonic;
        break;
      case InstrKind::Ret:
      case InstrKind::Nop:
        EXPECT_EQ(d.unit, ExecUnit::None) << d.mnemonic;
        break;
      default:
        // Moves, integer ALU/mul, lea, compares and FP logic all issue to
        // the general ALU pool in the sim's default dispatch case.
        EXPECT_EQ(d.unit, ExecUnit::Alu) << d.mnemonic;
    }
  }
}

// Def/use metadata consistency: flags readers/writers and destination
// semantics must line up with the instruction kind, or the dataflow and
// dependence analyses disagree about who produces what.
TEST(Instructions, DefUseMetadataConsistentWithKind) {
  for (const InstrDesc& d : instructionTable()) {
    switch (d.kind) {
      case InstrKind::Compare:
        EXPECT_TRUE(d.writesFlags) << d.mnemonic;
        EXPECT_FALSE(d.writesDest) << d.mnemonic;
        EXPECT_FALSE(d.readsDest) << d.mnemonic;
        break;
      case InstrKind::CondBranch:
        EXPECT_TRUE(d.readsFlags) << d.mnemonic;
        EXPECT_FALSE(d.writesDest) << d.mnemonic;
        break;
      case InstrKind::Jump:
      case InstrKind::Ret:
      case InstrKind::Nop:
        EXPECT_FALSE(d.writesDest) << d.mnemonic;
        EXPECT_FALSE(d.readsFlags) << d.mnemonic;
        EXPECT_FALSE(d.writesFlags) << d.mnemonic;
        break;
      case InstrKind::Move:
      case InstrKind::Lea:
        EXPECT_TRUE(d.writesDest) << d.mnemonic;
        EXPECT_FALSE(d.readsDest) << d.mnemonic;
        EXPECT_FALSE(d.writesFlags) << d.mnemonic;
        break;
      default:
        EXPECT_TRUE(d.writesDest) << d.mnemonic;
        EXPECT_TRUE(d.readsDest) << d.mnemonic;
    }
  }
}

TEST(Instructions, ExecUnitNamesAreStable) {
  EXPECT_EQ(execUnitName(ExecUnit::None), "none");
  EXPECT_EQ(execUnitName(ExecUnit::Alu), "alu");
  EXPECT_EQ(execUnitName(ExecUnit::FpAdd), "fp-add");
  EXPECT_EQ(execUnitName(ExecUnit::FpMul), "fp-mul");
  EXPECT_EQ(execUnitName(ExecUnit::FpDiv), "fp-div");
  EXPECT_EQ(execUnitName(ExecUnit::Branch), "branch");
}

TEST(MoveCandidates, AllCandidatesExistInTable) {
  for (int bytes : {4, 8, 16}) {
    for (bool aligned : {true, false}) {
      for (const std::string& m : moveCandidates(bytes, aligned)) {
        const InstrDesc* d = findInstruction(m);
        ASSERT_NE(d, nullptr) << m;
        EXPECT_EQ(d->memBytes, bytes);
        if (bytes == 16) {
          EXPECT_EQ(d->requiresAlignment, aligned);
        }
      }
    }
  }
}

}  // namespace
}  // namespace microtools::isa
