#include <gtest/gtest.h>

#include "ir/instruction.hpp"
#include "ir/kernel.hpp"
#include "ir/operand.hpp"
#include "support/error.hpp"

namespace microtools::ir {
namespace {

Instruction makeLoad() {
  Instruction instr;
  instr.operation = "movaps";
  MemOperand mem;
  mem.base = RegOperand::physical(isa::gpr(isa::kRsi, 64));
  mem.offset = 16;
  instr.operands.emplace_back(mem);
  instr.operands.emplace_back(RegOperand::physical(isa::xmm(1)));
  return instr;
}

// ---------------------------------------------------------------------------
// operands
// ---------------------------------------------------------------------------

TEST(Operand, PhysicalRegisterRenders) {
  EXPECT_EQ(RegOperand::physical(isa::gpr(isa::kRsi, 64)).render(), "%rsi");
  EXPECT_EQ(RegOperand::physical(isa::xmm(3)).render(), "%xmm3");
}

TEST(Operand, LogicalRegisterRenderBeforeAllocationThrows) {
  EXPECT_THROW(RegOperand::logical("r1").render(), McError);
}

TEST(Operand, RotatingRegisterRenderBeforeRotationThrows) {
  EXPECT_THROW(RegOperand::rotating("%xmm", 0, 8).render(), McError);
}

TEST(Operand, RotatingRangeValidated) {
  EXPECT_THROW(RegOperand::rotating("%xmm", 5, 5), DescriptionError);
  EXPECT_THROW(RegOperand::rotating("%xmm", -1, 4), DescriptionError);
  EXPECT_NO_THROW(RegOperand::rotating("%xmm", 0, 1));
}

TEST(Operand, MemoryRendersAttSyntax) {
  MemOperand mem;
  mem.base = RegOperand::physical(isa::gpr(isa::kRsi, 64));
  EXPECT_EQ(mem.render(), "(%rsi)");
  mem.offset = 32;
  EXPECT_EQ(mem.render(), "32(%rsi)");
  mem.offset = -8;
  EXPECT_EQ(mem.render(), "-8(%rsi)");
}

TEST(Operand, MemoryWithIndexAndScale) {
  MemOperand mem;
  mem.base = RegOperand::physical(isa::gpr(isa::kRdx, 64));
  mem.index = RegOperand::physical(isa::gpr(isa::kRax, 64));
  mem.scale = 8;
  mem.offset = 4;
  EXPECT_EQ(mem.render(), "4(%rdx,%rax,8)");
}

TEST(Operand, ImmediateRenders) {
  ImmOperand imm;
  imm.value = 48;
  EXPECT_EQ(imm.render(), "$48");
  imm.value = -12;
  EXPECT_EQ(imm.render(), "$-12");
}

TEST(Operand, UnresolvedImmediateChoicesThrow) {
  ImmOperand imm;
  imm.choices = {1, 2};
  EXPECT_THROW(imm.render(), McError);
}

TEST(Operand, TypeQueries) {
  Operand reg = RegOperand::logical("r1");
  Operand imm = ImmOperand{4, {}};
  Operand label = LabelOperand{"L6"};
  EXPECT_TRUE(isRegister(reg));
  EXPECT_TRUE(isImmediate(imm));
  EXPECT_TRUE(isLabel(label));
  EXPECT_FALSE(isMemory(reg));
}

// ---------------------------------------------------------------------------
// instructions
// ---------------------------------------------------------------------------

TEST(Instruction, RendersLoad) {
  EXPECT_EQ(makeLoad().render(), "movaps 16(%rsi), %xmm1");
}

TEST(Instruction, LoadStoreClassification) {
  Instruction load = makeLoad();
  EXPECT_TRUE(load.isLoad());
  EXPECT_FALSE(load.isStore());
  Instruction store = swappedOperands(load);
  EXPECT_TRUE(store.isStore());
  EXPECT_FALSE(store.isLoad());
}

TEST(Instruction, SwapIsInvolution) {
  Instruction load = makeLoad();
  EXPECT_EQ(swappedOperands(swappedOperands(load)), load);
}

TEST(Instruction, SwapRequiresTwoOperands) {
  Instruction instr;
  instr.operation = "ret";
  EXPECT_THROW(swappedOperands(instr), DescriptionError);
}

TEST(Instruction, RenderWithoutOperationThrows) {
  Instruction instr;
  EXPECT_THROW(instr.render(), McError);
}

TEST(Instruction, FullyResolvedChecks) {
  Instruction instr = makeLoad();
  EXPECT_TRUE(instr.isFullyResolved());

  Instruction pendingRepeat = instr;
  pendingRepeat.repeatMax = 3;
  EXPECT_FALSE(pendingRepeat.isFullyResolved());

  Instruction pendingChoice = instr;
  pendingChoice.operation.clear();
  pendingChoice.operationChoices = {"movaps", "movups"};
  EXPECT_FALSE(pendingChoice.isFullyResolved());

  Instruction pendingSemantics = instr;
  pendingSemantics.semantics = MoveSemantics{16, true, false, true};
  EXPECT_FALSE(pendingSemantics.isFullyResolved());

  Instruction unbound = instr;
  unbound.operands[1] = RegOperand::logical("r9");
  EXPECT_FALSE(unbound.isFullyResolved());

  Instruction pendingImm = instr;
  pendingImm.operands.emplace_back(ImmOperand{0, {1, 2}});
  EXPECT_FALSE(pendingImm.isFullyResolved());
}

// ---------------------------------------------------------------------------
// kernel
// ---------------------------------------------------------------------------

Kernel makeKernel() {
  Kernel kernel;
  kernel.baseName = "k";
  kernel.body.push_back(makeLoad());
  InductionVar pointer;
  pointer.reg = RegOperand::logical("r1");
  pointer.increment = 16;
  pointer.offsetStep = 16;
  kernel.inductions.push_back(pointer);
  InductionVar counter;
  counter.reg = RegOperand::logical("r0");
  counter.increment = -1;
  counter.lastInduction = true;
  kernel.inductions.push_back(counter);
  return kernel;
}

TEST(Kernel, VariantNameJoinsTags) {
  Kernel kernel = makeKernel();
  EXPECT_EQ(kernel.variantName(), "k");
  kernel.tag("u3");
  kernel.tag("seqSLS");
  EXPECT_EQ(kernel.variantName(), "k_u3_seqSLS");
}

TEST(Kernel, InductionLookup) {
  Kernel kernel = makeKernel();
  ASSERT_NE(kernel.inductionFor("r1"), nullptr);
  EXPECT_EQ(kernel.inductionFor("r1")->increment, 16);
  EXPECT_EQ(kernel.inductionFor("rX"), nullptr);
}

TEST(Kernel, LastInduction) {
  Kernel kernel = makeKernel();
  ASSERT_NE(kernel.lastInduction(), nullptr);
  EXPECT_EQ(kernel.lastInduction()->reg.logicalName, "r0");
}

TEST(Kernel, LoadStoreCounts) {
  Kernel kernel = makeKernel();
  EXPECT_EQ(kernel.loadCount(), 1);
  EXPECT_EQ(kernel.storeCount(), 0);
  kernel.body.push_back(swappedOperands(kernel.body[0]));
  EXPECT_EQ(kernel.loadCount(), 1);
  EXPECT_EQ(kernel.storeCount(), 1);
}

TEST(Kernel, EffectiveIncrementPrefersScaled) {
  InductionVar iv;
  iv.increment = -1;
  EXPECT_EQ(iv.effectiveIncrement(), -1);
  iv.scaledIncrement = -12;
  EXPECT_EQ(iv.effectiveIncrement(), -12);
}

}  // namespace
}  // namespace microtools::ir
