// Tests of the parallel and streaming generation front end: the stable
// variant-naming contract, bit-identity of --generate-jobs N against the
// serial pipeline for every example description, and the streaming
// produce-while-measuring path (PassManager::runStreaming).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "creator/creator.hpp"
#include "creator/pass.hpp"
#include "creator/pass_manager.hpp"
#include "support/error.hpp"
#include "test_helpers.hpp"

namespace microtools::creator {
namespace {

namespace fs = std::filesystem;

using testing::figure6Xml;
using testing::movssLoadXml;

/// Every description the property tests sweep: the shared test fixtures
/// plus every XML shipped under examples/descriptions.
std::vector<std::pair<std::string, std::string>> allDescriptions() {
  std::vector<std::pair<std::string, std::string>> out;
  out.emplace_back("figure6_full", figure6Xml(1, 8, true));
  out.emplace_back("figure6_small", figure6Xml(1, 2, false));
  out.emplace_back("movss_two_arrays", movssLoadXml(1, 4, 2));
#ifdef MT_EXAMPLES_DIR
  std::error_code ec;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(MT_EXAMPLES_DIR, ec)) {
    if (entry.path().extension() != ".xml") continue;
    std::ifstream in(entry.path());
    std::stringstream buf;
    buf << in.rdbuf();
    out.emplace_back(entry.path().filename().string(), buf.str());
  }
#endif
  return out;
}

// ---------------------------------------------------------------------------
// Naming contract
// ---------------------------------------------------------------------------

TEST(AssignVariantNames, FirstOccurrenceBareThenNumberedSuffixes) {
  std::vector<std::string> names =
      assignVariantNames({"a", "b", "a", "a", "b", "c"});
  std::vector<std::string> expected = {"a", "b", "a_v2", "a_v3", "b_v2", "c"};
  EXPECT_EQ(names, expected);
}

TEST(AssignVariantNames, DependsOnlyOnPositionAmongEqualBases) {
  // Inserting an unrelated base name must not shift anyone else's suffix.
  std::vector<std::string> before = assignVariantNames({"k", "k", "k"});
  std::vector<std::string> after = assignVariantNames({"k", "x", "k", "k"});
  EXPECT_EQ(before[0], after[0]);
  EXPECT_EQ(before[1], after[2]);
  EXPECT_EQ(before[2], after[3]);
}

TEST(AssignVariantNames, EmptyInputYieldsEmptyOutput) {
  EXPECT_TRUE(assignVariantNames({}).empty());
}

// ---------------------------------------------------------------------------
// Parallel bit-identity (the property test behind --generate-jobs)
// ---------------------------------------------------------------------------

void expectProgramsIdentical(const std::vector<GeneratedProgram>& a,
                             const std::vector<GeneratedProgram>& b,
                             const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name) << label << " #" << i;
    EXPECT_EQ(a[i].functionName, b[i].functionName) << label << " #" << i;
    EXPECT_EQ(a[i].asmText, b[i].asmText) << label << " #" << i;
    EXPECT_EQ(a[i].cText, b[i].cText) << label << " #" << i;
    EXPECT_EQ(a[i].contentId, b[i].contentId) << label << " #" << i;
    EXPECT_EQ(a[i].arrayCount, b[i].arrayCount) << label << " #" << i;
  }
}

TEST(ParallelGeneration, BitIdenticalToSerialForEveryDescription) {
  for (const auto& [label, xml] : allDescriptions()) {
    MicroCreator serial;
    std::vector<GeneratedProgram> reference = serial.generateFromText(xml);
    ASSERT_FALSE(reference.empty()) << label;
    for (int jobs : {2, 4, 8}) {
      MicroCreator parallel;
      parallel.setGenerateJobs(jobs);
      expectProgramsIdentical(reference, parallel.generateFromText(xml),
                              label + " jobs=" + std::to_string(jobs));
    }
  }
}

TEST(ParallelGeneration, RejectsNonPositiveJobCounts) {
  MicroCreator mc;
  EXPECT_THROW(mc.setGenerateJobs(0), McError);
  EXPECT_THROW(mc.setGenerateJobs(-3), McError);
  mc.setGenerateJobs(1);
  EXPECT_EQ(mc.generateJobs(), 1);
}

// ---------------------------------------------------------------------------
// Streaming generation
// ---------------------------------------------------------------------------

std::vector<GeneratedProgram> collectStream(const MicroCreator& mc,
                                            const std::string& xml,
                                            PassManager::StreamInfo* info) {
  Description description = parseDescriptionText(xml);
  std::vector<GeneratedProgram> out;
  mc.generateStream(
      description,
      [info](const PassManager::StreamInfo& i) {
        if (info) *info = i;
      },
      [&out](GeneratedProgram&& p) { out.push_back(std::move(p)); });
  return out;
}

TEST(StreamingGeneration, MatchesBatchOutputInOrder) {
  for (const auto& [label, xml] : allDescriptions()) {
    MicroCreator mc;
    std::vector<GeneratedProgram> batch = mc.generateFromText(xml);
    PassManager::StreamInfo info;
    std::vector<GeneratedProgram> streamed = collectStream(mc, xml, &info);
    expectProgramsIdentical(batch, streamed, label + " (stream serial)");
    // The announced shape bounds the delivered set: kernelCount counts
    // pre-verification kernels, so rejections can only shrink it.
    EXPECT_GE(info.kernelCount, streamed.size()) << label;
    EXPECT_GT(info.kernelCount, 0u) << label;

    MicroCreator wide;
    wide.setGenerateJobs(4);
    expectProgramsIdentical(batch, collectStream(wide, xml, nullptr),
                            label + " (stream jobs=4)");
  }
}

TEST(StreamingGeneration, FallsBackToBatchWhenTailPassIsReplaced) {
  // A plugin-replaced Verification pass disables the streaming tail; the
  // fallback must still deliver the exact batch output in order.
  std::string xml = figure6Xml(1, 4, false);
  MicroCreator reference;
  std::vector<GeneratedProgram> expected = reference.generateFromText(xml);

  MicroCreator patched;
  patched.passManager().replacePass(
      "Verification",
      std::make_unique<LambdaPass>("Verification", [](GenerationState&) {}));
  std::vector<GeneratedProgram> viaPatched = patched.generateFromText(xml);
  PassManager::StreamInfo info;
  std::vector<GeneratedProgram> streamed = collectStream(patched, xml, &info);
  expectProgramsIdentical(viaPatched, streamed, "plugin tail fallback");
  EXPECT_EQ(info.kernelCount, streamed.size());
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(streamed.size(), expected.size());
}

TEST(StreamingGeneration, RunStreamingRefusesPluginTail) {
  PassManager pm = PassManager::standardPipeline();
  pm.replacePass("Verification", std::make_unique<LambdaPass>(
                                     "Verification", [](GenerationState&) {}));
  GenerationState state(parseDescriptionText(figure6Xml(1, 2, false)));
  bool streamed = pm.runStreaming(
      state, [](const PassManager::StreamInfo&) {},
      [](GeneratedProgram&&) { FAIL() << "must not stream a plugin tail"; });
  EXPECT_FALSE(streamed);
}

}  // namespace
}  // namespace microtools::creator
