// Tests of the successive-halving exploration planner: budget parsing, the
// round schedule, survivor selection (ranking, tie guard, failure handling),
// and the end-to-end contracts — same top-1 as the exhaustive sweep at
// <= 50% of the variant-measurement work, graceful budget exhaustion,
// cache-hit-only warm reruns, and resume of an interrupted halving CSV.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <set>
#include <sstream>
#include <utility>

#include "launcher/explore.hpp"
#include "launcher/planner.hpp"
#include "launcher/sim_backend.hpp"
#include "sim/arch.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"
#include "test_helpers.hpp"

namespace microtools::launcher {
namespace {

namespace fs = std::filesystem;

using testing::figure6Xml;

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

std::string freshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  return dir;
}

/// Per-factory invocation counters shared by every backend it builds.
struct BackendCounters {
  std::atomic<int> constructed{0};
  std::atomic<int> loads{0};
  std::atomic<int> invokes{0};
};

/// SimBackend wrapper that counts construction and invocations — the proof
/// that a fully cached halving rerun performs zero backend work.
class CountingBackend final : public Backend {
 public:
  explicit CountingBackend(std::shared_ptr<BackendCounters> counters)
      : counters_(std::move(counters)),
        inner_(sim::nehalemX5650DualSocket()) {
    counters_->constructed++;
  }

  std::string name() const override { return "counting-sim"; }
  std::unique_ptr<KernelHandle> load(const std::string& asmText,
                                     const std::string& fn) override {
    counters_->loads++;
    return inner_.load(asmText, fn);
  }
  InvokeResult invoke(KernelHandle& kernel,
                      const KernelRequest& request) override {
    counters_->invokes++;
    return inner_.invoke(kernel, request);
  }
  double timerOverheadCycles() const override {
    return inner_.timerOverheadCycles();
  }
  std::vector<InvokeResult> invokeFork(KernelHandle& kernel,
                                       const KernelRequest& request,
                                       int processes, int calls,
                                       PinPolicy policy) override {
    return inner_.invokeFork(kernel, request, processes, calls, policy);
  }
  InvokeResult invokeOpenMp(KernelHandle& kernel,
                            const KernelRequest& request, int threads,
                            int repetitions) override {
    return inner_.invokeOpenMp(kernel, request, threads, repetitions);
  }
  void reset() override { inner_.reset(); }

 private:
  std::shared_ptr<BackendCounters> counters_;
  SimBackend inner_;
};

/// Figure-6 exploration at the baseline Figure-10 protocol (outer 10), the
/// geometry the <= 50% work contract is stated against.
ExploreOptions halvingOptions(std::shared_ptr<BackendCounters> counters) {
  ExploreOptions options;
  options.descriptionText = figure6Xml(1, 8, false);  // 8 unroll variants
  options.arrayBytes = 16 * 1024;
  options.campaign.protocol.innerRepetitions = 1;
  options.campaign.protocol.outerRepetitions = 10;
  options.campaign.maxCv = 0.05;
  options.campaign.maxRepetitions = 40;
  options.useCache = false;
  options.search = SearchMode::Halving;
  options.backendFactory = [counters](int) {
    return std::make_unique<CountingBackend>(counters);
  };
  options.backendId = "counting-sim";
  return options;
}

VariantResult okRow(const std::string& name, double median, double cv) {
  VariantResult r;
  r.name = name;
  r.status = "ok";
  r.measurement.cyclesPerIteration =
      stats::Summary{3, median, median, median, median, cv * median, cv};
  r.finalCv = cv;
  r.repetitions = 3;
  r.converged = true;
  return r;
}

// ---------------------------------------------------------------------------
// Budget / mode parsing and the round schedule
// ---------------------------------------------------------------------------

TEST(Planner, ParseBudgetSecondsVariantsAndNone) {
  Budget none = parseBudget("");
  EXPECT_EQ(none.kind, Budget::Kind::None);

  Budget seconds = parseBudget("30s");
  EXPECT_EQ(seconds.kind, Budget::Kind::Seconds);
  EXPECT_DOUBLE_EQ(seconds.seconds, 30.0);
  EXPECT_DOUBLE_EQ(parseBudget("2.5s").seconds, 2.5);

  Budget variants = parseBudget("16");
  EXPECT_EQ(variants.kind, Budget::Kind::Variants);
  EXPECT_EQ(variants.variants, 16);

  EXPECT_THROW(parseBudget("0"), McError);
  EXPECT_THROW(parseBudget("-3"), McError);
  EXPECT_THROW(parseBudget("0s"), McError);
  EXPECT_THROW(parseBudget("-1.5s"), McError);
  EXPECT_THROW(parseBudget("soon"), McError);
  EXPECT_THROW(parseBudget("s"), McError);
}

TEST(Planner, SearchModeFromNameValidatesInput) {
  EXPECT_EQ(searchModeFromName("full"), SearchMode::Full);
  EXPECT_EQ(searchModeFromName("halving"), SearchMode::Halving);
  EXPECT_THROW(searchModeFromName("binary"), McError);
}

TEST(Planner, HalvingBudgetsDoubleUpToTheBaseline) {
  EXPECT_EQ(halvingBudgets(1, 10), (std::vector<int>{1, 2, 4, 8}));
  EXPECT_EQ(halvingBudgets(3, 10), (std::vector<int>{3, 6}));
  // Screening at or past the baseline degenerates to the final round only.
  EXPECT_TRUE(halvingBudgets(10, 10).empty());
  EXPECT_TRUE(halvingBudgets(16, 10).empty());
}

// ---------------------------------------------------------------------------
// Survivor selection
// ---------------------------------------------------------------------------

TEST(Planner, SelectSurvivorsKeepsTheBestHalfByMedian) {
  std::vector<VariantResult> rows = {
      okRow("slow", 8.0, 0.0), okRow("fastest", 1.0, 0.0),
      okRow("mid", 4.0, 0.0), okRow("fast", 2.0, 0.0)};
  std::vector<std::size_t> keep = selectSurvivors(rows, 3.0);
  ASSERT_EQ(keep.size(), 2u);  // floor(4/2)
  EXPECT_EQ(rows[keep[0]].name, "fastest");
  EXPECT_EQ(rows[keep[1]].name, "fast");
}

TEST(Planner, SelectSurvivorsAlwaysKeepsAtLeastOne) {
  std::vector<VariantResult> rows = {okRow("only", 1.0, 0.0)};
  EXPECT_EQ(selectSurvivors(rows, 3.0).size(), 1u);
}

TEST(Planner, SelectSurvivorsDropsFailuresAndRanksNanLast) {
  std::vector<VariantResult> rows = {okRow("good", 2.0, 0.0),
                                     okRow("undefined", kNan, 0.0),
                                     okRow("better", 1.0, 0.0)};
  rows.push_back(okRow("failed", 0.5, 0.0));
  rows.back().status = "error";
  std::vector<std::size_t> keep = selectSurvivors(rows, 3.0);
  // 3 rankable rows -> keep 1 (floor(3/2)); NaN medians and failed rows
  // must never beat a measured number.
  ASSERT_EQ(keep.size(), 1u);
  EXPECT_EQ(rows[keep[0]].name, "better");
}

TEST(Planner, SelectSurvivorsEmptyWhenEveryVariantFailed) {
  std::vector<VariantResult> rows = {okRow("a", 1.0, 0.0),
                                     okRow("b", 2.0, 0.0)};
  rows[0].status = "error";
  rows[1].status = "timeout";
  EXPECT_TRUE(selectSurvivors(rows, 3.0).empty());
}

TEST(Planner, SelectSurvivorsCvTieGuardKeepsIndistinguishableVariants) {
  // 10.0 vs 10.2 at 5% CV: |delta| = 0.2 <= 3 * sqrt(0.5^2 + 0.51^2), so
  // eliminating "close" would be a coin flip — it must survive the cut.
  std::vector<VariantResult> rows = {okRow("best", 1.0, 0.0),
                                     okRow("edge", 10.0, 0.05),
                                     okRow("close", 10.2, 0.05),
                                     okRow("far", 30.0, 0.05)};
  std::vector<std::size_t> keep = selectSurvivors(rows, 3.0);
  ASSERT_EQ(keep.size(), 3u);
  EXPECT_EQ(rows[keep[2]].name, "close");

  // An undefined (NaN) CV past the cut makes the comparison undecidable:
  // never eliminate on it.
  std::vector<VariantResult> nanCv = {okRow("best", 1.0, 0.0),
                                      okRow("edge", 10.0, 0.0),
                                      okRow("undecidable", 10.5, kNan),
                                      okRow("far", 30.0, 0.0)};
  keep = selectSurvivors(nanCv, 3.0);
  ASSERT_GE(keep.size(), 3u);
  EXPECT_EQ(nanCv[keep[2]].name, "undecidable");

  // With zero CV everywhere, only exact ties extend the cut.
  std::vector<VariantResult> crisp = {okRow("best", 1.0, 0.0),
                                      okRow("edge", 10.0, 0.0),
                                      okRow("close", 10.2, 0.0),
                                      okRow("far", 30.0, 0.0)};
  EXPECT_EQ(selectSurvivors(crisp, 3.0).size(), 2u);
}

// ---------------------------------------------------------------------------
// End-to-end: the <= 50% work contract
// ---------------------------------------------------------------------------

TEST(Planner, HalvingMatchesExhaustiveTopOneAtHalfTheWork) {
  auto fullCounters = std::make_shared<BackendCounters>();
  ExploreOptions full = halvingOptions(fullCounters);
  full.search = SearchMode::Full;
  ExploreResult exhaustive = runExplore(full);
  ASSERT_EQ(exhaustive.results.size(), 8u);
  ASSERT_EQ(exhaustive.failures, 0u);
  ASSERT_GT(exhaustive.workRepetitions, 0);

  auto halvingCounters = std::make_shared<BackendCounters>();
  ExploreResult halved = runExplore(halvingOptions(halvingCounters));
  EXPECT_EQ(halved.stopReason, "complete");
  EXPECT_FALSE(halved.budgetExhausted);
  ASSERT_FALSE(halved.results.empty());
  ASSERT_FALSE(halved.rounds.empty());
  EXPECT_TRUE(halved.rounds.back().finalRound);

  // Same winner as the exhaustive sweep...
  csv::Table fullReport = topKReport(exhaustive.results, 1);
  csv::Table halvedReport = topKReport(halved.results, 1);
  ASSERT_EQ(fullReport.rowCount(), 1u);
  ASSERT_EQ(halvedReport.rowCount(), 1u);
  EXPECT_EQ(halvedReport.row(0)[1], fullReport.row(0)[1]);

  // ...for at most half the variant-measurement work, measuring strictly
  // fewer variants at full fidelity.
  EXPECT_LE(halved.workRepetitions * 2, exhaustive.workRepetitions);
  EXPECT_LT(halved.fullFidelityVariants, exhaustive.results.size());
  EXPECT_LT(halvingCounters->invokes.load(), fullCounters->invokes.load());
}

TEST(Planner, BudgetSmallerThanOneScreeningRoundReportsBestSoFar) {
  auto counters = std::make_shared<BackendCounters>();
  ExploreOptions options = halvingOptions(counters);
  options.planner.budget = parseBudget("3");  // 8 variants to screen
  ExploreResult out = runExplore(options);
  EXPECT_TRUE(out.budgetExhausted);
  EXPECT_EQ(out.stopReason, "budget exhausted (variants)");
  ASSERT_EQ(out.rounds.size(), 1u);
  EXPECT_TRUE(out.rounds[0].truncated);
  EXPECT_EQ(out.rounds[0].measured, 3u);
  EXPECT_EQ(out.results.size(), 3u);  // best-so-far: the screened prefix
  EXPECT_EQ(out.fullFidelityVariants, 0u);
  // The ranking still works on what was measured.
  EXPECT_GT(topKReport(out.results, 1).rowCount(), 0u);
}

TEST(Planner, VariantBudgetStopsBetweenRounds) {
  auto counters = std::make_shared<BackendCounters>();
  ExploreOptions options = halvingOptions(counters);
  options.planner.budget = parseBudget("8");  // exactly one screening round
  ExploreResult out = runExplore(options);
  EXPECT_TRUE(out.budgetExhausted);
  ASSERT_EQ(out.rounds.size(), 1u);
  EXPECT_FALSE(out.rounds[0].truncated);
  EXPECT_EQ(out.measured, 8u);
  EXPECT_EQ(out.results.size(), 8u);
}

TEST(Planner, AllVariantsFailingStopsWithoutSurvivors) {
  std::vector<CampaignVariant> variants = {
      {"broken_a", "asm", "not assembly at all\n", "microkernel", ""},
      {"broken_b", "asm", "neither is this\n", "microkernel", ""}};
  KernelRequest request;
  request.n = 64;
  request.arrays.push_back(ArraySpec{1024, 64, 0});
  CampaignOptions base;
  base.protocol.innerRepetitions = 1;
  base.protocol.outerRepetitions = 10;
  auto counters = std::make_shared<BackendCounters>();
  BackendFactory factory = [counters](int) {
    return std::make_unique<CountingBackend>(counters);
  };
  PlannerResult out =
      runSuccessiveHalving(variants, request, factory, base, PlannerOptions{});
  EXPECT_EQ(out.stopReason, "all variants failed");
  EXPECT_FALSE(out.budgetExhausted);
  ASSERT_EQ(out.rounds.size(), 1u);
  EXPECT_EQ(out.failures, 2u);
  for (const VariantResult& r : out.results) EXPECT_EQ(r.status, "error");
}

TEST(Planner, WarmCacheRerunPerformsZeroBackendWork) {
  std::string cacheDir = freshDir("planner_warm_cache");
  auto coldCounters = std::make_shared<BackendCounters>();
  ExploreOptions options = halvingOptions(coldCounters);
  options.useCache = true;
  options.cacheDir = cacheDir;
  ExploreResult cold = runExplore(options);
  EXPECT_EQ(cold.stopReason, "complete");
  EXPECT_GT(coldCounters->invokes.load(), 0);

  auto warmCounters = std::make_shared<BackendCounters>();
  ExploreOptions warm = halvingOptions(warmCounters);
  warm.useCache = true;
  warm.cacheDir = cacheDir;
  ExploreResult rerun = runExplore(warm);
  // Every round resolves from the cache up front: no backend is ever
  // constructed, loaded, or invoked, and the final ranking is unchanged.
  EXPECT_EQ(warmCounters->constructed.load(), 0);
  EXPECT_EQ(warmCounters->invokes.load(), 0);
  EXPECT_EQ(rerun.measured, 0u);
  EXPECT_EQ(rerun.workRepetitions, 0);
  EXPECT_EQ(rerun.cacheHits, cold.measured);
  EXPECT_EQ(rerun.stopReason, "complete");
  csv::Table coldReport = topKReport(cold.results, 1);
  csv::Table warmReport = topKReport(rerun.results, 1);
  ASSERT_GT(warmReport.rowCount(), 0u);
  EXPECT_EQ(warmReport.row(0)[1], coldReport.row(0)[1]);

  // A variant budget never truncates a warm rerun: cache hits are free.
  auto budgeted = std::make_shared<BackendCounters>();
  ExploreOptions capped = halvingOptions(budgeted);
  capped.useCache = true;
  capped.cacheDir = cacheDir;
  capped.planner.budget = parseBudget("1");
  ExploreResult cappedOut = runExplore(capped);
  EXPECT_EQ(cappedOut.stopReason, "complete");
  EXPECT_FALSE(cappedOut.budgetExhausted);
  EXPECT_EQ(budgeted->invokes.load(), 0);
}

// ---------------------------------------------------------------------------
// Static-prediction hooks: stability-reduced screening
// ---------------------------------------------------------------------------

TEST(Planner, StableVariantsScreenCheaperWithoutChangingTheWinner) {
  // Reference: halving with the cost model off, screening at 4 outer reps.
  auto plainCounters = std::make_shared<BackendCounters>();
  ExploreOptions plain = halvingOptions(plainCounters);
  plain.predict = false;
  plain.planner.screenRepetitions = 4;
  ExploreResult reference = runExplore(plain);
  ASSERT_EQ(reference.stopReason, "complete");
  ASSERT_FALSE(reference.rounds.empty());

  // Directed run: predictions on. The Figure-6 kernels are regular
  // L1-resident streaming loops (one 16 KiB array against a 32 KiB L1), so
  // every variant proves stable and screens with 1 rep instead of 4.
  auto directedCounters = std::make_shared<BackendCounters>();
  ExploreOptions directed = halvingOptions(directedCounters);
  directed.planner.screenRepetitions = 4;
  directed.planner.stableScreenRepetitions = 1;
  ExploreResult out = runExplore(directed);
  ASSERT_EQ(out.stopReason, "complete");
  ASSERT_FALSE(out.rounds.empty());

  // Same winner...
  EXPECT_EQ(topKReport(out.results, 1).row(0)[1],
            topKReport(reference.results, 1).row(0)[1]);

  // ...with >= 25% fewer fresh screening repetitions in round 0 (here it
  // is 8 vs 32, a 75% reduction) and strictly less total work.
  long long plainScreen = reference.rounds[0].workRepetitions;
  long long directedScreen = out.rounds[0].workRepetitions;
  ASSERT_GT(plainScreen, 0);
  EXPECT_LE(directedScreen * 4, plainScreen * 3);
  EXPECT_LT(out.workRepetitions, reference.workRepetitions);
  EXPECT_LT(directedCounters->invokes.load(), plainCounters->invokes.load());

  // Later rounds are untouched: the final round runs the full baseline
  // protocol either way, so the verdict fidelity is identical.
  EXPECT_TRUE(out.rounds.back().finalRound);
  EXPECT_EQ(out.rounds.back().outerRepetitions,
            reference.rounds.back().outerRepetitions);

  // Every surviving row carries its prediction.
  for (const VariantResult& r : out.results) {
    if (r.status != "ok") continue;
    EXPECT_TRUE(std::isfinite(r.predCpiLo)) << r.name;
    EXPECT_FALSE(r.predBound.empty()) << r.name;
  }
}

TEST(Planner, PredictedOrderSeedsScreeningSoBudgetCutsTheSlowTail) {
  // A 2-variant budget with predictions on must screen the two variants
  // with the lowest predicted cycles/iteration, not an arbitrary prefix.
  auto counters = std::make_shared<BackendCounters>();
  ExploreOptions options = halvingOptions(counters);
  options.planner.budget = parseBudget("2");
  ExploreResult out = runExplore(options);
  EXPECT_TRUE(out.budgetExhausted);
  ASSERT_EQ(out.results.size(), 2u);
  // Fewer micro-ops per element is never predicted slower: the screened
  // pair must be at least as fast (by prediction) as everything dropped.
  double worstKept = 0.0;
  for (const VariantResult& r : out.results) {
    ASSERT_TRUE(std::isfinite(r.predCpiLo)) << r.name;
    worstKept = std::max(worstKept, r.predCpiLo);
  }
  ExploreOptions all = halvingOptions(counters);
  all.search = SearchMode::Full;
  ExploreResult sweep = runExplore(all);
  std::vector<double> preds;
  for (const VariantResult& r : sweep.results) {
    ASSERT_TRUE(std::isfinite(r.predCpiLo)) << r.name;
    preds.push_back(r.predCpiLo);
  }
  std::sort(preds.begin(), preds.end());
  ASSERT_GE(preds.size(), 2u);
  // The worst kept prediction is no worse than the 2nd-smallest overall:
  // the budget dropped the predicted-slow tail, not an arbitrary suffix.
  EXPECT_LE(worstKept, preds[1] + 1e-12);
}

TEST(Planner, ResumesInterruptedHalvingCsv) {
  std::string csvPath =
      freshDir("planner_resume") + "/halving.csv";
  fs::create_directories(fs::path(csvPath).parent_path());

  // The uninterrupted reference run.
  auto refCounters = std::make_shared<BackendCounters>();
  ExploreResult reference = runExplore(halvingOptions(refCounters));
  std::string winner = topKReport(reference.results, 1).row(0)[1];

  // First run: the variant budget deterministically "interrupts" the
  // search after the screening round, with every row streamed to the CSV.
  auto firstCounters = std::make_shared<BackendCounters>();
  ExploreOptions first = halvingOptions(firstCounters);
  first.planner.budget = parseBudget("8");
  {
    CampaignCsvSink sink(csvPath);
    ExploreResult out = runExplore(first, &sink);
    EXPECT_TRUE(out.budgetExhausted);
  }

  // Second run resumes the file: round 0 is backfilled from the CSV (not
  // re-measured), later rounds run fresh, and the winner matches the
  // uninterrupted search.
  auto secondCounters = std::make_shared<BackendCounters>();
  ExploreOptions second = halvingOptions(secondCounters);
  second.planner.resumeCsv = csvPath;
  ExploreResult resumed;
  {
    CampaignCsvSink sink(csvPath);
    resumed = runExplore(second, &sink);
  }
  EXPECT_EQ(resumed.stopReason, "complete");
  EXPECT_EQ(resumed.skipped, 8u);  // the whole screening round came back
  EXPECT_LT(secondCounters->invokes.load(), refCounters->invokes.load());
  EXPECT_EQ(topKReport(resumed.results, 1).row(0)[1], winner);
  EXPECT_EQ(resumed.workRepetitions + 8, reference.workRepetitions);

  // Resume never duplicates rows: every (round, sequence) pair is unique.
  std::ifstream in(csvPath, std::ios::binary);
  std::string line;
  std::set<std::pair<std::string, std::string>> seen;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    if (line.empty() || strings::startsWith(line, "#")) continue;
    std::vector<std::string> cells = csv::parseLine(line);
    ASSERT_GE(cells.size(), 2u);
    EXPECT_TRUE(seen.insert({cells[1], cells[0]}).second)
        << "duplicate row for round " << cells[1] << " sequence " << cells[0];
  }
  EXPECT_EQ(seen.size(),
            static_cast<std::size_t>(reference.measured));
}

}  // namespace
}  // namespace microtools::launcher
