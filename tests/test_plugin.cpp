// A MicroCreator plugin used by plugin_test.cpp: demonstrates the three
// plugin capabilities of §3.3 — adding a pass, replacing a pass, and
// overriding a gate — through the exported pluginInit entry point.

#include "creator/pass_manager.hpp"

using microtools::creator::GenerationState;
using microtools::creator::LambdaPass;
using microtools::creator::PassManager;

extern "C" void pluginInit(PassManager& pm) {
  // 1. Add a pass that tags every kernel so tests can observe plugin
  //    execution order (it runs right after unrolling).
  pm.addPassAfter("Unrolling",
                  std::make_unique<LambdaPass>(
                      "PluginTagger", [](GenerationState& state) {
                        for (auto& kernel : state.kernels) {
                          kernel.tag("plugged");
                        }
                      }));

  // 2. Gate off the scheduling pass.
  pm.setGate("Scheduling", [](const GenerationState&) { return false; });
}
