#include <gtest/gtest.h>

#include "creator/creator.hpp"
#include "creator/plugin.hpp"
#include "support/error.hpp"
#include "test_helpers.hpp"

#ifndef MT_TEST_PLUGIN_PATH
#error "MT_TEST_PLUGIN_PATH must be defined by the build"
#endif

namespace microtools::creator {
namespace {

TEST(Plugin, LoadsAndRegistersPass) {
  MicroCreator mc;
  mc.loadPlugin(MT_TEST_PLUGIN_PATH);
  auto names = mc.passManager().passNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "PluginTagger"),
            names.end());
  EXPECT_EQ(mc.passManager().size(), 21u);  // 20 standard + PluginTagger
}

TEST(Plugin, PluginPassRunsAndTagsKernels) {
  MicroCreator mc;
  mc.loadPlugin(MT_TEST_PLUGIN_PATH);
  auto programs = mc.generateFromText(testing::figure6Xml(2, 2, false));
  ASSERT_EQ(programs.size(), 1u);
  EXPECT_NE(programs[0].name.find("plugged"), std::string::npos);
}

TEST(Plugin, InsertedAfterUnrolling) {
  MicroCreator mc;
  mc.loadPlugin(MT_TEST_PLUGIN_PATH);
  auto names = mc.passManager().passNames();
  auto unrolling = std::find(names.begin(), names.end(), "Unrolling");
  ASSERT_NE(unrolling, names.end());
  EXPECT_EQ(*(unrolling + 1), "PluginTagger");
}

TEST(Plugin, MissingLibraryThrows) {
  MicroCreator mc;
  EXPECT_THROW(mc.loadPlugin("/nonexistent/plugin.so"), McError);
}

TEST(Plugin, LibraryWithoutEntryPointThrows) {
  // libmt_support has no pluginInit; loading it must fail cleanly. Find it
  // next to the test plugin is fragile, so use the C library instead.
  PluginLoader loader;
  PassManager pm = PassManager::standardPipeline();
  EXPECT_THROW(loader.load("libc.so.6", pm), McError);
}

TEST(Plugin, LoaderTracksLoadedPaths) {
  PluginLoader loader;
  PassManager pm = PassManager::standardPipeline();
  loader.load(MT_TEST_PLUGIN_PATH, pm);
  ASSERT_EQ(loader.loadedPlugins().size(), 1u);
  EXPECT_EQ(loader.loadedPlugins()[0], MT_TEST_PLUGIN_PATH);
}

TEST(Plugin, RepeatLoadAddsDuplicatePassAndThrows) {
  // Loading the same plugin twice tries to register PluginTagger again,
  // which the PassManager rejects — the error must surface, not crash.
  MicroCreator mc;
  mc.loadPlugin(MT_TEST_PLUGIN_PATH);
  EXPECT_THROW(mc.loadPlugin(MT_TEST_PLUGIN_PATH), McError);
}

}  // namespace
}  // namespace microtools::creator
