// End-to-end integration tests: XML description -> MicroCreator ->
// (assembly) -> MicroLauncher on both backends, covering the paper's
// workflows at reduced scale.

#include <gtest/gtest.h>

#include <fstream>

#include "creator/creator.hpp"
#include "launcher/launcher.hpp"
#include "launcher/sim_backend.hpp"
#include "native/native_backend.hpp"
#include "test_helpers.hpp"

namespace microtools {
namespace {

using launcher::ArraySpec;
using launcher::KernelRequest;
using launcher::Measurement;
using launcher::ProtocolOptions;

TEST(Integration, FullSection51StudyAtReducedScale) {
  // Generate the (Load|Store)+ family (unroll 1..4 -> 30 variants), run
  // every variant on the simulator in L1, and verify that every
  // measurement is positive and programs with more memory operations per
  // iteration cost more cycles per iteration.
  auto programs = testing::generate(testing::figure6Xml(1, 4));
  ASSERT_EQ(programs.size(), 30u);

  launcher::MicroLauncher ml(
      std::make_unique<launcher::SimBackend>(sim::nehalemX5650DualSocket()));
  ProtocolOptions protocol;
  protocol.innerRepetitions = 2;
  protocol.outerRepetitions = 2;

  double maxPerIterU1 = 0.0, minPerIterU4 = 1e9;
  for (const auto& program : programs) {
    ml.backend().reset();
    auto kernel = ml.load(program);
    KernelRequest request;
    request.arrays.push_back(ArraySpec{16 * 1024, 4096, 0});
    request.n = 16 * 1024 / 4;
    Measurement m = ml.measure(*kernel, request, protocol);
    ASSERT_GT(m.cyclesPerIteration.min, 0.0) << program.name;
    if (program.kernel.unrollFactor == 1) {
      maxPerIterU1 = std::max(maxPerIterU1, m.cyclesPerIteration.min);
    }
    if (program.kernel.unrollFactor == 4) {
      minPerIterU4 = std::min(minPerIterU4, m.cyclesPerIteration.min);
    }
  }
  // 4 memory ops per iteration cost more than 1 memory op per iteration.
  EXPECT_GT(minPerIterU4, maxPerIterU1);
}

TEST(Integration, SimAndNativeAgreeOnIterationCounts) {
  auto programs = testing::generate(testing::figure6Xml(1, 8, false));
  launcher::SimBackend simBackend(sim::nehalemX5650DualSocket());
  native::NativeBackend nativeBackend;
  for (const auto& program : programs) {
    KernelRequest request;
    request.arrays.push_back(ArraySpec{32 * 1024, 4096, 0});
    request.n = 32 * 1024 / 4;
    auto simKernel = simBackend.load(program);
    auto nativeKernel = nativeBackend.load(program);
    auto simResult = simBackend.invoke(*simKernel, request);
    auto nativeResult = nativeBackend.invoke(*nativeKernel, request);
    EXPECT_EQ(simResult.iterations, nativeResult.iterations) << program.name;
  }
}

TEST(Integration, MoveSemanticStudyMatchesPaperGrouping) {
  // §5.1 groups 510 variants into movss/movsd/movaps/movapd families via
  // move semantics; with both aligned spellings and unroll 1..2 the fan-out
  // is (2 moves) x (2+4 sequences) = 12 programs.
  const char* xml = R"(<description>
  <benchmark_name>mv</benchmark_name>
  <kernel>
    <instruction>
      <move_semantic><bytes>16</bytes><aligned/></move_semantic>
      <memory><register><name>r1</name></register><offset>0</offset></memory>
      <register><phyName>%xmm</phyName><min>0</min><max>8</max></register>
      <swap_after_unroll/>
    </instruction>
    <unrolling><min>1</min><max>2</max></unrolling>
    <induction><register><name>r1</name></register>
      <increment>16</increment><offset>16</offset></induction>
    <induction><register><name>r0</name></register><increment>-1</increment>
      <linked><register><name>r1</name></register></linked>
      <last_induction/></induction>
    <branch_information><label>L6</label><test>jge</test>
    </branch_information>
  </kernel>
</description>)";
  auto programs = testing::generate(xml);
  EXPECT_EQ(programs.size(), 12u);
  int movaps = 0, movapd = 0;
  for (const auto& p : programs) {
    if (p.name.find("movaps") != std::string::npos) ++movaps;
    if (p.name.find("movapd") != std::string::npos) ++movapd;
  }
  EXPECT_EQ(movaps, 6);
  EXPECT_EQ(movapd, 6);
}

TEST(Integration, WrittenProgramsLoadFromDisk) {
  auto programs = testing::generate(testing::figure6Xml(2, 2, false));
  std::string dir = ::testing::TempDir() + "/mt_integration_out";
  auto written = creator::writePrograms(programs, dir);
  ASSERT_EQ(written.size(), 1u);
  // The file round-trips through the launcher's file-based loader path.
  std::ifstream in(written[0]);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  launcher::SimBackend backend(sim::nehalemX5650DualSocket());
  auto kernel = backend.load(text, "microkernel");
  KernelRequest request;
  request.arrays.push_back(ArraySpec{4096, 4096, 0});
  request.n = 1024;
  EXPECT_EQ(backend.invoke(*kernel, request).iterations, 1024u / 8 + 1);
  for (const auto& path : written) std::remove(path.c_str());
}

TEST(Integration, SanitizeFileStemNeutralizesHostilePaths) {
  EXPECT_EQ(creator::sanitizeFileStem("plain_name"), "plain_name");
  EXPECT_EQ(creator::sanitizeFileStem("a/b/c"), "a_b_c");
  EXPECT_EQ(creator::sanitizeFileStem("..\\up"), ".._up");
  EXPECT_EQ(creator::sanitizeFileStem("tab\there"), "tab_here");
  // Names that would resolve to the directory itself (or its parent) are
  // replaced wholesale, not merely escaped.
  EXPECT_EQ(creator::sanitizeFileStem(""), "variant");
  EXPECT_EQ(creator::sanitizeFileStem("."), "variant");
  EXPECT_EQ(creator::sanitizeFileStem(".."), "variant");
}

TEST(Integration, WriteProgramsSanitizesStemsInsideOutputDir) {
  auto programs = testing::generate(testing::figure6Xml(2, 2, false));
  ASSERT_EQ(programs.size(), 1u);
  programs[0].name = "evil/../../escape";
  std::string dir = ::testing::TempDir() + "/mt_sanitize_out";
  auto written = creator::writePrograms(programs, dir);
  ASSERT_EQ(written.size(), 1u);
  // The separators became '_', so the file stays inside `dir`.
  EXPECT_NE(written[0].find("evil_.._.._escape.s"), std::string::npos)
      << written[0];
  std::ifstream in(written[0]);
  EXPECT_TRUE(in.good());
  for (const auto& path : written) std::remove(path.c_str());
}

TEST(Integration, WriteProgramsRejectsDuplicateStems) {
  auto programs = testing::generate(testing::figure6Xml(2, 2, false));
  ASSERT_EQ(programs.size(), 1u);
  programs.push_back(programs[0]);
  programs[0].name = "same/name";
  programs[1].name = "same_name";  // sanitizes to the same stem
  std::string dir = ::testing::TempDir() + "/mt_duplicate_out";
  EXPECT_THROW(creator::writePrograms(programs, dir), McError);
}

TEST(Integration, AlignmentSweepShowsAliasingSpread) {
  // §5.2.2's mechanism at small scale: a load+store kernel over two arrays
  // whose relative 4 KiB placement varies shows a cycles/iteration spread.
  const char* xml = R"(<kernel>
    <instruction>
      <operation>movss</operation>
      <memory><register><name>a</name></register><offset>0</offset></memory>
      <register><phyName>%xmm0</phyName></register>
    </instruction>
    <instruction>
      <operation>movss</operation>
      <register><phyName>%xmm0</phyName></register>
      <memory><register><name>b</name></register><offset>0</offset></memory>
    </instruction>
    <induction><register><name>a</name></register>
      <increment>4</increment><offset>4</offset></induction>
    <induction><register><name>b</name></register>
      <increment>4</increment><offset>4</offset></induction>
    <induction><register><name>r0</name></register><increment>-1</increment>
      <linked><register><name>a</name></register></linked>
      <last_induction/></induction>
    <branch_information><label>L2</label><test>jge</test>
    </branch_information>
  </kernel>)";
  auto programs = testing::generate(xml);
  ASSERT_EQ(programs.size(), 1u);
  launcher::MicroLauncher ml(
      std::make_unique<launcher::SimBackend>(sim::nehalemX5650DualSocket()));
  auto kernel = ml.load(programs[0]);
  KernelRequest request;
  request.arrays.push_back(ArraySpec{8 * 1024, 4096, 0});
  request.arrays.push_back(ArraySpec{8 * 1024, 4096, 0});
  request.n = 8 * 1024 / 4;
  launcher::AlignmentSweepSpec spec;
  spec.maxOffset = 4096;
  spec.step = 256;
  spec.maxConfigs = 48;
  ProtocolOptions protocol;
  protocol.innerRepetitions = 1;
  protocol.outerRepetitions = 2;
  auto samples = ml.alignmentSweep(*kernel, request, spec, protocol);
  double lo = 1e18, hi = 0;
  for (const auto& s : samples) {
    lo = std::min(lo, s.measurement.cyclesPerIteration.min);
    hi = std::max(hi, s.measurement.cyclesPerIteration.min);
  }
  EXPECT_GT(hi, lo);  // alignment matters
}

TEST(Integration, CEmissionPathRunsOnNativeBackend) {
  std::string xml = testing::figure6Xml(2, 2, false);
  xml.insert(xml.find("<kernel>"), "<emit_c/>");
  auto programs = testing::generate(xml);
  ASSERT_FALSE(programs[0].cText.empty());
  native::NativeBackend backend;
  auto kernel = backend.loadCSource(programs[0].cText, "microkernel");
  KernelRequest request;
  request.arrays.push_back(ArraySpec{16 * 1024, 4096, 0});
  request.n = 16 * 1024 / 4;
  auto r = backend.invoke(*kernel, request);
  EXPECT_EQ(r.iterations, 16u * 1024 / 4 / 8 + 1);
}

TEST(Integration, PluginAlteredPipelineStillProducesRunnablePrograms) {
  creator::MicroCreator mc;
  mc.loadPlugin(MT_TEST_PLUGIN_PATH);
  auto programs = mc.generateFromText(testing::figure6Xml(2, 2, false));
  ASSERT_EQ(programs.size(), 1u);
  launcher::SimBackend backend(sim::nehalemX5650DualSocket());
  auto kernel = backend.load(programs[0]);
  KernelRequest request;
  request.arrays.push_back(ArraySpec{4096, 4096, 0});
  request.n = 1024;
  EXPECT_GT(backend.invoke(*kernel, request).iterations, 0u);
}

}  // namespace
}  // namespace microtools
