#include <gtest/gtest.h>

#include "asmparse/asmparse.hpp"
#include "support/error.hpp"
#include "test_helpers.hpp"

namespace microtools::asmparse {
namespace {

TEST(AsmParse, ParsesMinimalFunction) {
  Program p = parseAssembly(
      "\t.globl f\n"
      "f:\n"
      "\txor %eax, %eax\n"
      "\tret\n");
  EXPECT_EQ(p.functionName, "f");
  ASSERT_EQ(p.instructions.size(), 2u);
  EXPECT_EQ(p.instructions[0].mnemonic, "xor");
  EXPECT_EQ(p.instructions[1].desc->kind, isa::InstrKind::Ret);
}

TEST(AsmParse, RegisterOperands) {
  Program p = parseAssembly("f:\n mov %rsi, %rax\n ret\n");
  const DecodedInsn& insn = p.instructions[0];
  ASSERT_EQ(insn.operands.size(), 2u);
  EXPECT_EQ(insn.operands[0].kind, DecodedOperand::Kind::Reg);
  EXPECT_EQ(insn.operands[0].reg.index, isa::kRsi);
  EXPECT_EQ(insn.operands[1].reg.index, isa::kRax);
}

TEST(AsmParse, ImmediateOperands) {
  Program p = parseAssembly("f:\n add $-48, %rsi\n ret\n");
  EXPECT_EQ(p.instructions[0].operands[0].kind, DecodedOperand::Kind::Imm);
  EXPECT_EQ(p.instructions[0].operands[0].imm, -48);
}

TEST(AsmParse, HexImmediate) {
  Program p = parseAssembly("f:\n add $0x10, %rsi\n ret\n");
  EXPECT_EQ(p.instructions[0].operands[0].imm, 16);
}

TEST(AsmParse, MemoryOperandForms) {
  Program p = parseAssembly(
      "f:\n"
      " movaps (%rsi), %xmm0\n"
      " movaps 16(%rsi), %xmm1\n"
      " movsd -8(%rdx,%rax,8), %xmm2\n"
      " movss 4096, %xmm3\n"
      " ret\n");
  const auto& m0 = p.instructions[0].operands[0].mem;
  EXPECT_EQ(m0.base->index, isa::kRsi);
  EXPECT_EQ(m0.disp, 0);
  const auto& m1 = p.instructions[1].operands[0].mem;
  EXPECT_EQ(m1.disp, 16);
  const auto& m2 = p.instructions[2].operands[0].mem;
  EXPECT_EQ(m2.disp, -8);
  EXPECT_EQ(m2.base->index, isa::kRdx);
  EXPECT_EQ(m2.index->index, isa::kRax);
  EXPECT_EQ(m2.scale, 8);
  const auto& m3 = p.instructions[3].operands[0].mem;
  EXPECT_FALSE(m3.base.has_value());
  EXPECT_EQ(m3.disp, 4096);
}

TEST(AsmParse, LabelsAndBranches) {
  Program p = parseAssembly(
      "f:\n"
      ".L6:\n"
      " sub $1, %rdi\n"
      " jge .L6\n"
      " ret\n");
  EXPECT_EQ(p.labelTarget("L6"), 0u);
  const DecodedInsn& branch = p.instructions[1];
  EXPECT_EQ(branch.desc->kind, isa::InstrKind::CondBranch);
  ASSERT_EQ(branch.operands.size(), 1u);
  EXPECT_EQ(branch.operands[0].kind, DecodedOperand::Kind::Label);
  EXPECT_EQ(branch.operands[0].label, "L6");
}

TEST(AsmParse, UnknownLabelTargetThrows) {
  Program p = parseAssembly("f:\n ret\n");
  EXPECT_THROW(p.labelTarget("nope"), ParseError);
}

TEST(AsmParse, CommentsAndDirectivesSkipped) {
  Program p = parseAssembly(
      "# leading comment\n"
      "\t.text\n"
      "\t.p2align 4\n"
      "f:\n"
      "\tnop # trailing comment\n"
      "\t.size f, .-f\n"
      "\tret\n");
  EXPECT_EQ(p.instructions.size(), 2u);
}

TEST(AsmParse, FunctionNameFromGlobl) {
  Program p = parseAssembly(".globl myfn\nmyfn:\n ret\n");
  EXPECT_EQ(p.functionName, "myfn");
}

TEST(AsmParse, FunctionNameFromFirstNonLocalLabel) {
  Program p = parseAssembly("entry:\n.L1:\n ret\n");
  EXPECT_EQ(p.functionName, "entry");
}

TEST(AsmParse, SuffixedMnemonicsResolve) {
  Program p = parseAssembly("f:\n addq $8, %rsi\n subl $1, %edi\n ret\n");
  EXPECT_EQ(p.instructions[0].desc->mnemonic, "add");
  EXPECT_EQ(p.instructions[1].desc->mnemonic, "sub");
}

TEST(AsmParse, UnknownInstructionThrowsWithLine) {
  try {
    parseAssembly("f:\n nop\n vfmadd231ps %ymm0, %ymm1, %ymm2\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
    // The mnemonic starts after one leading space: column 2.
    EXPECT_EQ(e.line(), 3u);
    EXPECT_EQ(e.column(), 2u);
  }
}

TEST(AsmParse, InstructionsCarryLineAndColumn) {
  Program p = parseAssembly("f:\n nop\n\tadd $8, %rsi\n ret\n");
  ASSERT_EQ(p.instructions.size(), 3u);
  EXPECT_EQ(p.instructions[0].line, 2u);
  EXPECT_EQ(p.instructions[0].column, 2u);  // one leading space
  EXPECT_EQ(p.instructions[1].line, 3u);
  EXPECT_EQ(p.instructions[1].column, 2u);  // one leading tab
  EXPECT_EQ(p.instructions[2].line, 4u);
}

TEST(AsmParse, OperandErrorsCarryColumn) {
  try {
    parseAssembly("f:\n mov %qqq, %rax\n ret\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_GT(e.column(), 2u);  // points into the operand, past the mnemonic
  }
}

TEST(AsmParse, UnknownRegisterThrows) {
  EXPECT_THROW(parseAssembly("f:\n mov %qqq, %rax\n"), ParseError);
}

TEST(AsmParse, MalformedMemoryThrows) {
  EXPECT_THROW(parseAssembly("f:\n movss 8(%rsi, %rdx\n"), ParseError);
  EXPECT_THROW(parseAssembly("f:\n movss (%rsi,%rdx,3), %xmm0\n"),
               ParseError);
}

TEST(AsmParse, EmptyInputThrows) {
  EXPECT_THROW(parseAssembly(""), ParseError);
  EXPECT_THROW(parseAssembly("\t.text\n# nothing\n"), ParseError);
}

TEST(AsmParse, DuplicateLabelThrowsWithLineAndColumn) {
  try {
    parseAssembly("f:\nf:\n ret\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_EQ(e.column(), 1u);  // the label starts the line
  }
}

TEST(AsmParse, ReadsWritesMemoryClassification) {
  Program p = parseAssembly(
      "f:\n"
      " movaps (%rsi), %xmm0\n"   // load
      " movaps %xmm0, (%rsi)\n"   // store
      " mulsd (%r8), %xmm0\n"     // load-op
      " cmp $0, %rdi\n"           // no memory
      " ret\n");
  EXPECT_TRUE(p.instructions[0].readsMemory());
  EXPECT_FALSE(p.instructions[0].writesMemory());
  EXPECT_FALSE(p.instructions[1].readsMemory());
  EXPECT_TRUE(p.instructions[1].writesMemory());
  EXPECT_TRUE(p.instructions[2].readsMemory());
  EXPECT_FALSE(p.instructions[2].writesMemory());
  EXPECT_FALSE(p.instructions[3].readsMemory());
  EXPECT_FALSE(p.instructions[3].writesMemory());
}

TEST(AsmParse, AccessBytesFromDescriptor) {
  Program p = parseAssembly(
      "f:\n"
      " movaps (%rsi), %xmm0\n"
      " movss (%rsi), %xmm0\n"
      " movsd (%rsi), %xmm0\n"
      " movq (%rsi), %rax\n"
      " movl (%rsi), %eax\n"
      " ret\n");
  EXPECT_EQ(p.instructions[0].accessBytes(), 16);
  EXPECT_EQ(p.instructions[1].accessBytes(), 4);
  EXPECT_EQ(p.instructions[2].accessBytes(), 8);
  EXPECT_EQ(p.instructions[3].accessBytes(), 8);
  EXPECT_EQ(p.instructions[4].accessBytes(), 4);
}

// Round-trip property: every program MicroCreator emits parses cleanly and
// the label/branch structure is consistent.
class CreatorRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(CreatorRoundTrip, GeneratedProgramsParse) {
  auto programs =
      microtools::testing::generate(microtools::testing::figure6Xml(
          GetParam(), GetParam()));
  ASSERT_FALSE(programs.empty());
  for (const auto& prog : programs) {
    Program parsed = parseAssembly(prog.asmText);
    EXPECT_EQ(parsed.functionName, prog.functionName);
    // Loop label resolves.
    EXPECT_NO_THROW(parsed.labelTarget("L6"));
    // Body size: unroll copies + 3 inductions + branch + prologue(2) + ret.
    EXPECT_EQ(parsed.instructions.size(),
              static_cast<std::size_t>(GetParam()) + 3 + 1 + 2 + 1);
    // Exactly one conditional branch, and it targets L6.
    int branches = 0;
    for (const DecodedInsn& insn : parsed.instructions) {
      if (insn.desc->kind == isa::InstrKind::CondBranch) {
        ++branches;
        EXPECT_EQ(insn.operands[0].label, "L6");
      }
    }
    EXPECT_EQ(branches, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(UnrollFactors, CreatorRoundTrip,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace microtools::asmparse
