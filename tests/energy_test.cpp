// Tests of the simulator's energy model (§7's "performance or power
// utilization" axis).

#include <gtest/gtest.h>

#include "asmparse/asmparse.hpp"
#include "sim/core.hpp"
#include "test_helpers.hpp"

namespace microtools::sim {
namespace {

RunResult runKernel(const MachineConfig& machine, int unroll,
                    std::uint64_t arrayBytes, bool warm = true) {
  auto programs = microtools::testing::generate(
      microtools::testing::figure6Xml(unroll, unroll, false));
  asmparse::Program parsed = asmparse::parseAssembly(programs[0].asmText);
  MemorySystem memsys(machine);
  if (warm) memsys.touch(0, 0x100000000ull, arrayBytes + 64);
  CoreSim core(machine, memsys, 0);
  return core.run(parsed, static_cast<int>(arrayBytes / 4),
                  {0x100000000ull});
}

TEST(Energy, PositiveAndComposedOfParts) {
  MachineConfig m = nehalemX5650DualSocket();
  RunResult r = runKernel(m, 4, 16 * 1024);
  EXPECT_GT(r.energyPj, 0.0);
  // At minimum the static component must be present.
  EXPECT_GE(r.energyPj,
            static_cast<double>(r.coreCycles) * m.staticEnergyPjPerCycle());
  // And the dynamic uop component.
  EXPECT_GE(r.energyPj, static_cast<double>(r.uops) * m.uopEnergyPj);
}

TEST(Energy, RamResidentCostsMoreThanL1) {
  MachineConfig m = nehalemX5650DualSocket();
  RunResult l1 = runKernel(m, 8, 16 * 1024);
  RunResult ram = runKernel(m, 8, 24ull * 1024 * 1024, /*warm=*/false);
  double l1PerIter = l1.energyPj / static_cast<double>(l1.iterations);
  double ramPerIter = ram.energyPj / static_cast<double>(ram.iterations);
  EXPECT_GT(ramPerIter, l1PerIter * 2);
}

TEST(Energy, UnrollingSavesEnergyPerElement) {
  // Fewer loop-maintenance uops and fewer leaky cycles per element.
  MachineConfig m = nehalemX5650DualSocket();
  RunResult u1 = runKernel(m, 1, 16 * 1024);
  RunResult u8 = runKernel(m, 8, 16 * 1024);
  // Normalize per element: iterations count elements via the linked
  // counter, identical for both kernels over the same array.
  double perElem1 = u1.energyPj / static_cast<double>(u1.iterations);
  double perElem8 = u8.energyPj / static_cast<double>(u8.iterations) / 1.0;
  // u8 iterations are per-trip (counter decrements 32/trip vs 4/trip);
  // compare per trip-normalized element counts instead.
  double e1 = u1.energyPj / (static_cast<double>(u1.iterations) * 4);
  double e8 = u8.energyPj / (static_cast<double>(u8.iterations) * 32);
  EXPECT_LT(e8, e1);
  (void)perElem1;
  (void)perElem8;
}

TEST(Energy, RaceToIdleForComputeBoundKernels) {
  // Same work at a lower clock burns more static energy.
  MachineConfig fast = nehalemX5650DualSocket();
  MachineConfig slow = nehalemX5650DualSocket();
  slow.coreGHz = 1.60;
  RunResult atFast = runKernel(fast, 8, 16 * 1024);
  RunResult atSlow = runKernel(slow, 8, 16 * 1024);
  EXPECT_GT(atSlow.energyPj, atFast.energyPj);
}

TEST(Energy, AverageWattsInPlausibleRange) {
  MachineConfig m = nehalemX5650DualSocket();
  RunResult r = runKernel(m, 8, 16 * 1024);
  double watts = r.averageWatts(m);
  EXPECT_GT(watts, 0.5);
  EXPECT_LT(watts, 50.0);
}

TEST(Energy, StaticEnergyScalesInverselyWithFrequency) {
  MachineConfig m = nehalemX5650DualSocket();
  double atNominal = m.staticEnergyPjPerCycle();
  m.coreGHz = m.nominalGHz / 2;
  EXPECT_DOUBLE_EQ(m.staticEnergyPjPerCycle(), atNominal * 2);
}

}  // namespace
}  // namespace microtools::sim
