// Tests of the static performance analyzer (verify/costmodel.*): the
// port-level throughput/latency/frontend bounds against hand-built loops
// with known answers, the muOpTime-style stability verdict, and the
// soundness property the whole design rests on — the predicted
// cycles/iteration is a LOWER bound on what the exact simulator measures,
// for every variant of every example description.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include "asmparse/asmparse.hpp"
#include "launcher/explore.hpp"
#include "sim/arch.hpp"
#include "verify/costmodel.hpp"
#include "verify/stability.hpp"

namespace microtools::verify {
namespace {

namespace fs = std::filesystem;

/// Hand-written counted loop: one load, one store, induction update,
/// compare, branch. 5 dispatch slots at issue width 4 -> 2 frontend
/// cycles; no port pool above 1.0; recurrence is the 1-cycle induction add.
constexpr const char* kLoadStoreLoop = R"(
  .globl kernel
kernel:
  xorq %rcx, %rcx
.L0:
  movss (%rsi,%rcx,4), %xmm0
  movss %xmm0, (%rdi,%rcx,4)
  addq $1, %rcx
  cmpq %rdx, %rcx
  jl .L0
  ret
)";

constexpr const char* kDivLoop = R"(
  .globl kernel
kernel:
  xorq %rcx, %rcx
.L0:
  divss %xmm1, %xmm0
  addq $1, %rcx
  cmpq %rdx, %rcx
  jl .L0
  ret
)";

constexpr const char* kPointerChaseLoop = R"(
  .globl kernel
kernel:
  xorq %rcx, %rcx
.L0:
  movq (%rsi), %rsi
  addq $1, %rcx
  cmpq %rdx, %rcx
  jl .L0
  ret
)";

CyclePrediction predict(const char* asmText) {
  return predictAssembly(asmText, CoreModel{});
}

TEST(CoreModelFromMachine, MirrorsTheSimulatorGeometry) {
  sim::MachineConfig machine = sim::machineByName("nehalem_x5650_2s");
  CoreModel model = coreModelFromMachine(machine);
  EXPECT_EQ(model.issueWidth, machine.issueWidth);
  EXPECT_EQ(model.loadPorts, machine.loadPorts);
  EXPECT_EQ(model.storePorts, machine.storePorts);
  EXPECT_EQ(model.aluPorts, machine.aluPorts);
  EXPECT_EQ(model.fpAddPorts, machine.fpAddPorts);
  EXPECT_EQ(model.fpMulPorts, machine.fpMulPorts);
  EXPECT_EQ(model.branchPorts, machine.branchPorts);
  EXPECT_EQ(model.loadLatency, machine.l1.latencyCycles);
  EXPECT_EQ(model.l1SizeBytes, machine.l1.sizeBytes);
}

TEST(CostModel, LoadStoreLoopIsFrontendBound) {
  CyclePrediction p = predict(kLoadStoreLoop);
  ASSERT_TRUE(p.valid) << (p.warnings.empty() ? "" : p.warnings.front());
  // 5 micro-op slots (load, store, add, cmp, branch) at issue width 4.
  EXPECT_DOUBLE_EQ(p.frontendBound, 2.0);
  // No pool is oversubscribed: load 1/1, store 1/1, alu 2/3, branch 1/1.
  EXPECT_DOUBLE_EQ(p.throughputBound, 1.0);
  // The only recurrence is the induction add (latency 1, distance 1); the
  // binary search stays a hair below the true ratio, never above.
  EXPECT_LE(p.latencyBound, 1.0);
  EXPECT_GT(p.latencyBound, 0.99);
  EXPECT_EQ(p.binding, "frontend");
  EXPECT_DOUBLE_EQ(p.cyclesLowerBound(), 2.0);
  EXPECT_FALSE(p.loadCarried);
}

TEST(CostModel, LoadStorePortPressureIsReported) {
  CyclePrediction p = predict(kLoadStoreLoop);
  ASSERT_TRUE(p.valid);
  double loadOcc = 0.0, storeOcc = 0.0, aluOcc = 0.0, branchOcc = 0.0;
  for (const PortPressure& port : p.pressure) {
    if (port.unit == "load") loadOcc = port.occupancy;
    if (port.unit == "store") storeOcc = port.occupancy;
    if (port.unit == "alu") aluOcc = port.occupancy;
    if (port.unit == "branch") branchOcc = port.occupancy;
  }
  EXPECT_DOUBLE_EQ(loadOcc, 1.0);
  EXPECT_DOUBLE_EQ(storeOcc, 1.0);
  EXPECT_DOUBLE_EQ(aluOcc, 2.0);   // add + cmp
  EXPECT_DOUBLE_EQ(branchOcc, 1.0);
}

TEST(CostModel, UnpipelinedDividerBindsTheSharedFpMulPort) {
  CyclePrediction p = predict(kDivLoop);
  ASSERT_TRUE(p.valid);
  // divss occupies the shared FpMul port for its full 14-cycle latency.
  EXPECT_DOUBLE_EQ(p.throughputBound, 14.0);
  EXPECT_EQ(p.binding, "fp-mul");
  // xmm0 is read-modify-write: the recurrence is the 14-cycle divide.
  EXPECT_GT(p.latencyBound, 13.9);
  EXPECT_LE(p.latencyBound, 14.0);
  EXPECT_DOUBLE_EQ(p.cyclesLowerBound(), 14.0);
  EXPECT_FALSE(p.loadCarried);
}

TEST(CostModel, PointerChaseIsLatencyBoundAndLoadCarried) {
  CyclePrediction p = predict(kPointerChaseLoop);
  ASSERT_TRUE(p.valid);
  // The load feeds its own address: recurrence = L1 load-to-use latency.
  EXPECT_TRUE(p.loadCarried);
  EXPECT_GT(p.latencyBound, 3.9);
  EXPECT_LE(p.latencyBound, 4.0);
  EXPECT_EQ(p.binding, "latency");
}

TEST(CostModel, UnmodeledOpcodeWarnsOncePerMnemonicAndInvalidates) {
  asmparse::Program program = asmparse::parseAssembly(kLoadStoreLoop);
  static const isa::InstrDesc kMystery = [] {
    isa::InstrDesc d;
    d.mnemonic = "mystery";
    d.kind = isa::InstrKind::IntAlu;
    d.unmodeled = true;
    return d;
  }();
  // Two occurrences of the same unmodeled mnemonic: the warning must not
  // repeat, and the prediction must decline instead of guessing.
  program.instructions[2].desc = &kMystery;
  program.instructions[3].desc = &kMystery;
  EXPECT_EQ(unmodeledMnemonics(program),
            std::vector<std::string>{"mystery"});
  CyclePrediction p = predictProgram(program, CoreModel{});
  EXPECT_FALSE(p.valid);
  int mentions = 0;
  for (const std::string& w : p.warnings) {
    if (w.find("mystery") != std::string::npos) ++mentions;
  }
  EXPECT_EQ(mentions, 1);
}

TEST(CostModel, ParseFailureComesBackAsWarningNotThrow) {
  CyclePrediction p = predictAssembly("this is not assembly !!!",
                                      CoreModel{});
  EXPECT_FALSE(p.valid);
  ASSERT_FALSE(p.warnings.empty());
  EXPECT_NE(p.warnings.front().find("parse error"), std::string::npos);
}

TEST(CostModel, StraightLineCodeHasNoRecognizedLoop) {
  CyclePrediction p = predictAssembly(
      "  .globl kernel\nkernel:\n  ret\n", CoreModel{});
  EXPECT_FALSE(p.valid);
  ASSERT_FALSE(p.warnings.empty());
  EXPECT_NE(p.warnings.front().find("no recognized single-block loop"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// stability
// ---------------------------------------------------------------------------

TEST(Stability, RegularL1ResidentLoadStoreLoopIsStable) {
  StabilityOptions geometry;
  geometry.footprintBytes = 8 * 1024;  // two 4 KiB arrays: inside 32 KiB L1
  StabilityReport s = analyzeStability(kLoadStoreLoop, CoreModel{}, geometry);
  EXPECT_TRUE(s.regularLoop);
  EXPECT_TRUE(s.fitsL1);
  EXPECT_TRUE(s.steadyDependences);
  EXPECT_TRUE(s.stable());
  EXPECT_DOUBLE_EQ(s.score(), 1.0);
}

TEST(Stability, UnknownOrOversizedFootprintIsNotProvablyStable) {
  StabilityReport unknown =
      analyzeStability(kLoadStoreLoop, CoreModel{}, StabilityOptions{});
  EXPECT_FALSE(unknown.fitsL1);
  EXPECT_FALSE(unknown.stable());

  StabilityOptions big;
  big.footprintBytes = 1 << 20;  // 1 MiB streams far past L1
  StabilityReport streaming =
      analyzeStability(kLoadStoreLoop, CoreModel{}, big);
  EXPECT_FALSE(streaming.fitsL1);
  EXPECT_FALSE(streaming.stable());
}

TEST(Stability, LoadCarriedDependenceFailsSteadiness) {
  StabilityOptions geometry;
  geometry.footprintBytes = 8 * 1024;
  StabilityReport s =
      analyzeStability(kPointerChaseLoop, CoreModel{}, geometry);
  EXPECT_TRUE(s.regularLoop);
  EXPECT_TRUE(s.fitsL1);
  EXPECT_FALSE(s.steadyDependences);
  EXPECT_FALSE(s.stable());
  EXPECT_NEAR(s.score(), 2.0 / 3.0, 1e-12);
}

TEST(Stability, ParseFailureScoresZero) {
  StabilityReport s =
      analyzeStability("garbage $$$", CoreModel{}, StabilityOptions{});
  EXPECT_FALSE(s.regularLoop);
  EXPECT_FALSE(s.fitsL1);
  EXPECT_FALSE(s.steadyDependences);
  EXPECT_DOUBLE_EQ(s.score(), 0.0);
}

// ---------------------------------------------------------------------------
// soundness property: prediction <= exact simulation
// ---------------------------------------------------------------------------

// For every variant of every example description, the predicted
// cycles/iteration must lower-bound what the exact simulator measures.
// --sim-exact cycle-simulates every invoke (no steady-state extrapolation),
// so the measured minimum is the true simulated cost including pipeline
// fill — anything the static model misses (ROB stalls, mispredicts, cache
// effects) only ADDS cycles on top of the bound.
TEST(CostModelProperty, PredictionLowerBoundsExactSimulation) {
  std::vector<std::string> descriptions;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(MT_EXAMPLES_DIR)) {
    if (entry.path().extension() == ".xml") {
      descriptions.push_back(entry.path().string());
    }
  }
  ASSERT_FALSE(descriptions.empty());

  for (const std::string& description : descriptions) {
    launcher::ExploreOptions options;
    options.descriptionFile = description;
    options.simExact = true;  // exact per-invoke cycle simulation
    options.useCache = false;
    options.arrayBytes = 16 * 1024;  // L1-resident geometry
    options.campaign.protocol.innerRepetitions = 1;
    options.campaign.protocol.outerRepetitions = 2;
    options.campaign.maxRepetitions = 2;
    launcher::ExploreResult result = launcher::runExplore(options);
    ASSERT_FALSE(result.results.empty()) << description;
    for (const launcher::VariantResult& r : result.results) {
      if (r.status != "ok") continue;
      ASSERT_TRUE(std::isfinite(r.predCpiLo))
          << description << ":" << r.name << " has no prediction";
      EXPECT_FALSE(r.predBound.empty()) << description << ":" << r.name;
      EXPECT_LE(r.predCpiLo,
                r.measurement.cyclesPerIteration.min + 1e-9)
          << description << ":" << r.name
          << " bound above exact simulation";
      EXPECT_GT(r.predCpiLo, 0.0) << description << ":" << r.name;
    }
  }
}

}  // namespace
}  // namespace microtools::verify
