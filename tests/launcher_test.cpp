#include <gtest/gtest.h>

#include <set>

#include "launcher/arch_registry.hpp"
#include "launcher/launcher.hpp"
#include "launcher/options.hpp"
#include "launcher/sim_backend.hpp"
#include "support/error.hpp"
#include "test_helpers.hpp"

namespace microtools::launcher {
namespace {

using testing::figure6Xml;
using testing::generate;

std::unique_ptr<SimBackend> makeBackend() {
  return std::make_unique<SimBackend>(sim::nehalemX5650DualSocket());
}

creator::GeneratedProgram loadStoreProgram(int unroll) {
  auto programs = generate(figure6Xml(unroll, unroll, false));
  return programs.at(0);
}

KernelRequest basicRequest(std::uint64_t bytes) {
  KernelRequest request;
  request.arrays.push_back(ArraySpec{bytes, 4096, 0});
  request.n = static_cast<int>(bytes / 4);
  return request;
}

/// Scripted backend for protocol edge-case tests: `behavior` maps the
/// 0-based invocation index to the result of that call.
class FakeBackend final : public Backend {
 public:
  struct FakeKernel final : KernelHandle {};

  std::function<InvokeResult(int call)> behavior =
      [](int) { return InvokeResult{100.0, 10}; };
  double overhead = 0.0;
  int invokeCount = 0;

  std::string name() const override { return "fake"; }
  std::unique_ptr<KernelHandle> load(const std::string&,
                                     const std::string&) override {
    return std::make_unique<FakeKernel>();
  }
  InvokeResult invoke(KernelHandle&, const KernelRequest&) override {
    return behavior(invokeCount++);
  }
  double timerOverheadCycles() const override { return overhead; }
  std::vector<InvokeResult> invokeFork(KernelHandle&, const KernelRequest&,
                                       int, int, PinPolicy) override {
    throw ExecutionError("fake backend has no fork mode");
  }
  InvokeResult invokeOpenMp(KernelHandle&, const KernelRequest&, int,
                            int) override {
    throw ExecutionError("fake backend has no OpenMP mode");
  }
};

// ---------------------------------------------------------------------------
// Protocol (Figure 10)
// ---------------------------------------------------------------------------

TEST(Protocol, ProducesStableSamples) {
  auto backend = makeBackend();
  auto kernel = backend->load(loadStoreProgram(8).asmText, "microkernel");
  ProtocolOptions protocol;
  protocol.innerRepetitions = 4;
  protocol.outerRepetitions = 6;
  Measurement m =
      measureKernel(*backend, *kernel, basicRequest(16 * 1024), protocol);
  EXPECT_EQ(m.cyclesPerIteration.count, 6u);
  EXPECT_GT(m.cyclesPerIteration.min, 0.0);
  // Warm, deterministic simulator: outer samples must be nearly identical.
  EXPECT_LT(m.cyclesPerIteration.cv, 0.05);
}

TEST(Protocol, WarmupLowersMeasuredCycles) {
  auto measureWith = [](bool warmup) {
    auto backend = makeBackend();
    auto kernel = backend->load(loadStoreProgram(8).asmText, "microkernel");
    ProtocolOptions protocol;
    protocol.warmup = warmup;
    protocol.innerRepetitions = 1;
    protocol.outerRepetitions = 1;
    KernelRequest request;
    request.arrays.push_back(ArraySpec{512 * 1024, 4096, 0});
    request.n = 512 * 1024 / 4;
    return measureKernel(*backend, *kernel, request, protocol)
        .cyclesPerIteration.min;
  };
  EXPECT_LT(measureWith(true), measureWith(false));
}

TEST(Protocol, OverheadSubtractionLowersResult) {
  auto run = [](bool subtract) {
    auto backend = makeBackend();
    auto kernel = backend->load(loadStoreProgram(1).asmText, "microkernel");
    ProtocolOptions protocol;
    protocol.subtractOverhead = subtract;
    return measureKernel(*backend, *kernel, basicRequest(4096), protocol)
        .cyclesPerIteration.mean;
  };
  EXPECT_LT(run(true), run(false));
}

TEST(Protocol, ValidatesRepetitions) {
  auto backend = makeBackend();
  auto kernel = backend->load(loadStoreProgram(1).asmText, "microkernel");
  ProtocolOptions protocol;
  protocol.innerRepetitions = 0;
  EXPECT_THROW(
      measureKernel(*backend, *kernel, basicRequest(4096), protocol),
      McError);
}

TEST(Protocol, IterationsPerCallReported) {
  auto backend = makeBackend();
  auto kernel = backend->load(loadStoreProgram(4).asmText, "microkernel");
  Measurement m = measureKernel(*backend, *kernel, basicRequest(16 * 1024),
                                ProtocolOptions{});
  EXPECT_EQ(m.iterationsPerCall, 16u * 1024 / 4 / 16 + 1);
}

TEST(Protocol, ZeroIterationsRaisesExecutionError) {
  FakeBackend backend;
  backend.behavior = [](int) { return InvokeResult{100.0, 0}; };
  auto kernel = backend.load("", "microkernel");
  ProtocolOptions protocol;
  protocol.warmup = false;
  EXPECT_THROW(measureKernel(backend, *kernel, KernelRequest{}, protocol),
               ExecutionError);
}

TEST(Protocol, WarmupOffSkipsTheExtraInvocation) {
  FakeBackend backend;
  ProtocolOptions protocol;
  protocol.warmup = false;
  protocol.innerRepetitions = 2;
  protocol.outerRepetitions = 3;
  auto kernel = backend.load("", "microkernel");
  measureKernel(backend, *kernel, KernelRequest{}, protocol);
  EXPECT_EQ(backend.invokeCount, 6);  // exactly inner * outer, no warm-up

  backend.invokeCount = 0;
  protocol.warmup = true;
  measureKernel(backend, *kernel, KernelRequest{}, protocol);
  EXPECT_EQ(backend.invokeCount, 7);  // + the untimed cache-warming call
}

TEST(Protocol, NegativeSamplesClampToZero) {
  // A fast kernel on a noisy host: subtracted overhead exceeds elapsed.
  FakeBackend backend;
  backend.behavior = [](int) { return InvokeResult{10.0, 8}; };
  backend.overhead = 1000.0;
  ProtocolOptions protocol;
  protocol.warmup = false;
  auto kernel = backend.load("", "microkernel");
  Measurement m = measureKernel(backend, *kernel, KernelRequest{}, protocol);
  EXPECT_EQ(m.cyclesPerIteration.min, 0.0);
  EXPECT_EQ(m.cyclesPerIteration.max, 0.0);
  EXPECT_GE(m.cyclesPerIteration.mean, 0.0);
}

// ---------------------------------------------------------------------------
// Adaptive repetition
// ---------------------------------------------------------------------------

TEST(Adaptive, StableSamplesStopAtBaseline) {
  FakeBackend backend;
  ProtocolOptions protocol;
  protocol.warmup = false;
  protocol.innerRepetitions = 1;
  protocol.outerRepetitions = 5;
  AdaptivePolicy policy{0.05, 50};
  auto kernel = backend.load("", "microkernel");
  AdaptiveMeasurement am = measureKernelAdaptive(
      backend, *kernel, KernelRequest{}, protocol, policy);
  EXPECT_EQ(am.repetitions, 5);  // constant samples: CV 0, no extras
  EXPECT_TRUE(am.converged);
  EXPECT_EQ(am.measurement.cyclesPerIteration.count, 5u);
}

TEST(Adaptive, NoisySamplesExtendToBudget) {
  FakeBackend backend;
  backend.behavior = [](int call) {
    return InvokeResult{call % 2 ? 300.0 : 100.0, 10};  // CV stays high
  };
  ProtocolOptions protocol;
  protocol.warmup = false;
  protocol.innerRepetitions = 1;
  protocol.outerRepetitions = 4;
  AdaptivePolicy policy{0.01, 12};
  auto kernel = backend.load("", "microkernel");
  AdaptiveMeasurement am = measureKernelAdaptive(
      backend, *kernel, KernelRequest{}, protocol, policy);
  EXPECT_EQ(am.repetitions, 12);  // the full budget was spent
  EXPECT_FALSE(am.converged);
  EXPECT_GT(am.measurement.cyclesPerIteration.cv, 0.01);
}

TEST(Adaptive, ConvergesOnceNoiseSubsides) {
  FakeBackend backend;
  backend.behavior = [](int call) {
    return InvokeResult{call < 3 ? 100.0 + 60.0 * call : 100.0, 10};
  };
  ProtocolOptions protocol;
  protocol.warmup = false;
  protocol.innerRepetitions = 1;
  protocol.outerRepetitions = 3;
  AdaptivePolicy policy{0.10, 100};
  auto kernel = backend.load("", "microkernel");
  AdaptiveMeasurement am = measureKernelAdaptive(
      backend, *kernel, KernelRequest{}, protocol, policy);
  EXPECT_GT(am.repetitions, 3);    // the noisy prefix forced extra runs
  EXPECT_LT(am.repetitions, 100);  // but nowhere near the budget
  EXPECT_TRUE(am.converged);
  EXPECT_LE(am.measurement.cyclesPerIteration.cv, 0.10);
}

TEST(Adaptive, DeadlineAbortsWithTimeoutError) {
  FakeBackend backend;
  ProtocolOptions protocol;
  protocol.warmup = false;
  auto kernel = backend.load("", "microkernel");
  EXPECT_THROW(
      measureKernelAdaptive(backend, *kernel, KernelRequest{}, protocol,
                            AdaptivePolicy{}, [] { return true; }),
      TimeoutError);
}

// ---------------------------------------------------------------------------
// SimBackend
// ---------------------------------------------------------------------------

TEST(SimBackend, HierarchyLevelsOrdered) {
  // The §5.1 claim: deeper levels cost more cycles per iteration.
  auto backend = makeBackend();
  auto kernel = backend->load(loadStoreProgram(8).asmText, "microkernel");
  ProtocolOptions protocol;
  protocol.innerRepetitions = 2;
  protocol.outerRepetitions = 3;
  double previous = 0.0;
  for (std::uint64_t bytes :
       {16ull * 1024, 64ull * 1024, 512ull * 1024, 24ull * 1024 * 1024}) {
    backend->reset();
    Measurement m =
        measureKernel(*backend, *kernel, basicRequest(bytes), protocol);
    EXPECT_GT(m.cyclesPerIteration.min, previous) << bytes;
    previous = m.cyclesPerIteration.min;
  }
}

TEST(SimBackend, FrequencySweepKeepsOffcoreConstant) {
  // Figure 13: in rdtsc cycles, L1 timing scales with core frequency while
  // RAM timing stays roughly constant.
  auto measure = [](double ghz, std::uint64_t bytes) {
    sim::MachineConfig cfg = sim::nehalemX5650DualSocket();
    cfg.coreGHz = ghz;
    SimBackend backend(cfg);
    auto kernel = backend.load(loadStoreProgram(8).asmText, "microkernel");
    ProtocolOptions protocol;
    protocol.innerRepetitions = 2;
    protocol.outerRepetitions = 2;
    KernelRequest request;
    request.arrays.push_back(ArraySpec{bytes, 4096, 0});
    request.n = static_cast<int>(bytes / 4);
    return measureKernel(backend, *kernel, request, protocol)
        .cyclesPerIteration.min;
  };
  double l1Fast = measure(2.67, 16 * 1024);
  double l1Slow = measure(1.60, 16 * 1024);
  // L1 kernels: constant core cycles => TSC cycles grow as the clock drops.
  EXPECT_GT(l1Slow, l1Fast * 1.3);
  double ramFast = measure(2.67, 24ull * 1024 * 1024);
  double ramSlow = measure(1.60, 24ull * 1024 * 1024);
  EXPECT_LT(std::abs(ramSlow - ramFast) / ramFast, 0.25);
}

TEST(SimBackend, ForkScalesAndSaturates) {
  auto backend = makeBackend();
  auto kernel = backend->load(loadStoreProgram(8).asmText, "microkernel");
  KernelRequest request;
  request.arrays.push_back(ArraySpec{2ull * 1024 * 1024, 4096, 0});
  request.n = 2 * 1024 * 1024 / 4;
  auto one = backend->invokeFork(*kernel, request, 1, 1, PinPolicy::Scatter);
  auto twelve =
      backend->invokeFork(*kernel, request, 12, 1, PinPolicy::Scatter);
  ASSERT_EQ(one.size(), 1u);
  ASSERT_EQ(twelve.size(), 12u);
  double onePer = one[0].tscCycles / static_cast<double>(one[0].iterations);
  double worst = 0;
  for (const auto& r : twelve) {
    worst = std::max(worst, r.tscCycles / static_cast<double>(r.iterations));
  }
  EXPECT_GT(worst, onePer * 1.5);  // saturation visible at full machine
}

TEST(SimBackend, ForkValidation) {
  auto backend = makeBackend();
  auto kernel = backend->load(loadStoreProgram(1).asmText, "microkernel");
  KernelRequest request = basicRequest(4096);
  EXPECT_THROW(backend->invokeFork(*kernel, request, 0, 1,
                                   PinPolicy::Scatter),
               McError);
  EXPECT_THROW(backend->invokeFork(*kernel, request, 99, 1,
                                   PinPolicy::Scatter),
               McError);
}

TEST(SimBackend, OpenMpReturnsAllIterations) {
  auto backend = makeBackend();
  auto kernel = backend->load(loadStoreProgram(1).asmText, "microkernel");
  KernelRequest request = basicRequest(64 * 1024);
  InvokeResult r = backend->invokeOpenMp(*kernel, request, 4, 5);
  EXPECT_GT(r.iterations, 0u);
  EXPECT_GT(r.tscCycles, 0.0);
}

TEST(SimBackend, ResetDropsWarmState) {
  auto backend = makeBackend();
  auto kernel = backend->load(loadStoreProgram(4).asmText, "microkernel");
  KernelRequest request = basicRequest(64 * 1024);
  backend->invoke(*kernel, request);               // cold
  InvokeResult warm = backend->invoke(*kernel, request);
  backend->reset();
  InvokeResult cold = backend->invoke(*kernel, request);
  EXPECT_GT(cold.tscCycles, warm.tscCycles);
}

TEST(SimBackend, MachineSwapReconfigures) {
  SimBackend backend(sim::nehalemX5650DualSocket());
  EXPECT_EQ(backend.name(), "sim:nehalem_x5650_2s");
  backend.setMachine(sim::sandyBridgeE31240());
  EXPECT_EQ(backend.name(), "sim:sandy_bridge_e31240");
}

// ---------------------------------------------------------------------------
// Alignment sweeps
// ---------------------------------------------------------------------------

TEST(Alignment, ConfigurationsCoverSmallProductExactly) {
  AlignmentSweepSpec spec;
  spec.minOffset = 0;
  spec.maxOffset = 256;
  spec.step = 64;  // 4 offsets per array
  spec.maxConfigs = 100;
  auto configs = alignmentConfigurations(2, spec);
  EXPECT_EQ(configs.size(), 16u);  // 4^2, under the cap
  std::set<std::vector<std::uint64_t>> unique(configs.begin(), configs.end());
  EXPECT_EQ(unique.size(), configs.size());
}

TEST(Alignment, CapSamplesEveryArrayDimension) {
  AlignmentSweepSpec spec;
  spec.minOffset = 0;
  spec.maxOffset = 4096;
  spec.step = 64;  // 64 offsets per array -> 64^4 total
  spec.maxConfigs = 2500;
  auto configs = alignmentConfigurations(4, spec);
  EXPECT_EQ(configs.size(), 2500u);
  for (std::size_t arrayIdx = 0; arrayIdx < 4; ++arrayIdx) {
    std::set<std::uint64_t> seen;
    for (const auto& c : configs) seen.insert(c[arrayIdx]);
    EXPECT_GT(seen.size(), 8u) << "array " << arrayIdx << " offsets frozen";
  }
}

TEST(Alignment, OffsetsRespectRange) {
  AlignmentSweepSpec spec;
  spec.minOffset = 128;
  spec.maxOffset = 512;
  spec.step = 128;
  auto configs = alignmentConfigurations(3, spec);
  for (const auto& c : configs) {
    for (std::uint64_t off : c) {
      EXPECT_GE(off, 128u);
      EXPECT_LT(off, 512u);
      EXPECT_EQ(off % 128, 0u);
    }
  }
}

TEST(Alignment, SaturatedProductStillSweepsEveryArray) {
  // 65536 offsets per array ^ 4 arrays saturates the uint64 product; the
  // old stride-1 fallback froze every digit but the lowest, so only the
  // first array's offset ever varied.
  AlignmentSweepSpec spec;
  spec.minOffset = 0;
  spec.maxOffset = 65536;
  spec.step = 1;
  spec.maxConfigs = 2048;
  auto configs = alignmentConfigurations(4, spec);
  ASSERT_EQ(configs.size(), 2048u);
  for (std::size_t arrayIdx = 0; arrayIdx < 4; ++arrayIdx) {
    std::set<std::uint64_t> seen;
    for (const auto& c : configs) seen.insert(c[arrayIdx]);
    EXPECT_GT(seen.size(), 8u) << "array " << arrayIdx << " offsets frozen";
  }
}

TEST(Alignment, SaturatedConfigurationsAreDistinct) {
  AlignmentSweepSpec spec;
  spec.minOffset = 0;
  spec.maxOffset = 65536;
  spec.step = 1;
  spec.maxConfigs = 2048;
  auto configs = alignmentConfigurations(4, spec);
  std::set<std::vector<std::uint64_t>> unique(configs.begin(), configs.end());
  EXPECT_EQ(unique.size(), configs.size());
}

TEST(Alignment, Validation) {
  AlignmentSweepSpec bad;
  bad.step = 0;
  EXPECT_THROW(alignmentConfigurations(1, bad), McError);
  EXPECT_THROW(alignmentConfigurations(0, AlignmentSweepSpec{}), McError);
  AlignmentSweepSpec noBudget;
  noBudget.maxConfigs = 0;
  EXPECT_THROW(alignmentConfigurations(1, noBudget), McError);
}

TEST(Alignment, SweepMeasuresEveryConfiguration) {
  MicroLauncher ml(makeBackend());
  auto programs = generate(testing::movssLoadXml(4, 4, 2));
  auto kernel = ml.load(programs[0]);
  KernelRequest request;
  request.arrays.push_back(ArraySpec{64 * 1024, 4096, 0});
  request.arrays.push_back(ArraySpec{64 * 1024, 4096, 0});
  request.n = 64 * 1024 / 4;
  AlignmentSweepSpec spec;
  spec.maxOffset = 256;
  spec.step = 64;
  spec.maxConfigs = 16;
  ProtocolOptions protocol;
  protocol.innerRepetitions = 1;
  protocol.outerRepetitions = 2;
  auto samples = ml.alignmentSweep(*kernel, request, spec, protocol);
  EXPECT_EQ(samples.size(), 16u);
  for (const auto& s : samples) {
    EXPECT_EQ(s.offsets.size(), 2u);
    EXPECT_GT(s.measurement.cyclesPerIteration.min, 0.0);
  }
}

// ---------------------------------------------------------------------------
// Options / CSV / registry
// ---------------------------------------------------------------------------

TEST(Options, ParserRoundTrip) {
  cli::Parser parser = makeLauncherParser();
  ASSERT_TRUE(parser.parse(
      {"--input", "k.s", "--nbvectors", "3", "--array-bytes", "8192",
       "--alignment", "64", "--align-offset", "16", "--inner", "5",
       "--outer", "7", "--pin", "2", "--cores", "6",
       "--pin-policy", "compact", "--backend", "sim",
       "--arch", "nehalem_x7550_4s", "--core-ghz", "1.6", "--openmp",
       "--threads", "8", "--no-warmup"}));
  LauncherOptions o = optionsFromParser(parser);
  EXPECT_EQ(o.inputFile, "k.s");
  EXPECT_EQ(o.nbVectors, 3);
  EXPECT_EQ(o.arrayBytes, 8192u);
  EXPECT_EQ(o.alignment, 64u);
  EXPECT_EQ(o.alignOffset, 16u);
  EXPECT_EQ(o.innerRepetitions, 5);
  EXPECT_EQ(o.outerRepetitions, 7);
  EXPECT_EQ(o.pinCore, 2);
  EXPECT_EQ(o.processes, 6);
  EXPECT_EQ(o.pinPolicy, "compact");
  EXPECT_EQ(o.arch, "nehalem_x7550_4s");
  ASSERT_TRUE(o.coreGHz);
  EXPECT_DOUBLE_EQ(*o.coreGHz, 1.6);
  EXPECT_TRUE(o.useOpenMp);
  EXPECT_EQ(o.threads, 8);
  EXPECT_TRUE(o.noWarmup);
}

TEST(Options, LauncherHasAtLeastThirtyOptions) {
  // §4.2: "more than thirty options in the MicroLauncher tool".
  cli::Parser parser = makeLauncherParser();
  std::string help = parser.helpText();
  int count = 0;
  std::size_t pos = 0;
  while ((pos = help.find("\n  --", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_GE(count, 30);
}

TEST(Options, DerivedRequest) {
  LauncherOptions o;
  o.nbVectors = 2;
  o.arrayBytes = 8192;
  o.arrayBytesPerVector = {4096};
  o.alignment = 128;
  o.alignOffset = 32;
  KernelRequest r = o.toRequest();
  ASSERT_EQ(r.arrays.size(), 2u);
  EXPECT_EQ(r.arrays[0].bytes, 4096u);   // per-vector override
  EXPECT_EQ(r.arrays[1].bytes, 8192u);   // default
  EXPECT_EQ(r.arrays[0].alignment, 128u);
  EXPECT_EQ(r.arrays[0].offset, 32u);
  EXPECT_EQ(r.n, 1024);  // first array's float elements
}

TEST(Options, ExplicitTripCountWins) {
  LauncherOptions o;
  o.tripCount = 777;
  EXPECT_EQ(o.effectiveTripCount(), 777);
}

TEST(Options, ElementBytesDrivesTripCountAndStride) {
  // The old code hard-coded 4-byte elements, a 2x trip-count error for
  // double-precision kernels.
  LauncherOptions o;
  o.arrayBytes = 8192;
  o.elementBytes = 8;
  EXPECT_EQ(o.effectiveTripCount(), 1024);
  KernelRequest r = o.toRequest();
  EXPECT_EQ(r.n, 1024);
  EXPECT_EQ(r.chunkStrideBytes, 8u);

  o.elementBytes = 4;
  EXPECT_EQ(o.effectiveTripCount(), 2048);
  EXPECT_EQ(o.toRequest().chunkStrideBytes, 4u);
}

TEST(Options, ElementBytesParsedAndValidated) {
  {
    cli::Parser p = makeLauncherParser();
    ASSERT_TRUE(p.parse({"--input", "k.s", "--element-bytes", "8"}));
    EXPECT_EQ(optionsFromParser(p).elementBytes, 8u);
  }
  {
    cli::Parser p = makeLauncherParser();
    ASSERT_TRUE(p.parse({"--element-bytes", "0"}));
    EXPECT_THROW(optionsFromParser(p), ParseError);
  }
}

TEST(Options, CampaignFlagsParsed) {
  cli::Parser p = makeLauncherParser();
  ASSERT_TRUE(p.parse({"--campaign", "/tmp/variants", "--jobs", "4",
                       "--max-cv", "0.02", "--max-repetitions", "24",
                       "--variant-timeout-ms", "500"}));
  LauncherOptions o = optionsFromParser(p);
  EXPECT_EQ(o.campaignDir, "/tmp/variants");
  EXPECT_EQ(o.jobs, 4);
  EXPECT_DOUBLE_EQ(o.maxCv, 0.02);
  EXPECT_EQ(o.maxRepetitions, 24);
  EXPECT_EQ(o.variantTimeoutMs, 500);
}

TEST(Options, CampaignFlagsValidated) {
  {
    cli::Parser p = makeLauncherParser();
    ASSERT_TRUE(p.parse({"--jobs", "0"}));
    EXPECT_THROW(optionsFromParser(p), ParseError);
  }
  {
    cli::Parser p = makeLauncherParser();
    ASSERT_TRUE(p.parse({"--variant-timeout-ms", "-1"}));
    EXPECT_THROW(optionsFromParser(p), ParseError);
  }
}

TEST(Options, InvalidCombinationsRejected) {
  {
    cli::Parser p = makeLauncherParser();
    ASSERT_TRUE(p.parse({"--nbvectors", "9"}));
    EXPECT_THROW(optionsFromParser(p), ParseError);
  }
  {
    cli::Parser p = makeLauncherParser();
    ASSERT_TRUE(p.parse({"--backend", "gpu"}));
    EXPECT_THROW(optionsFromParser(p), ParseError);
  }
  {
    cli::Parser p = makeLauncherParser();
    ASSERT_TRUE(p.parse({"--pin-policy", "random"}));
    EXPECT_THROW(optionsFromParser(p), ParseError);
  }
}

TEST(ArchRegistry, Table1Complete) {
  const auto& entries = table1();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].config.name, "sandy_bridge_e31240");
  EXPECT_EQ(entries[0].figures, (std::vector<int>{17, 18}));
  EXPECT_EQ(entries[1].figures,
            (std::vector<int>{2, 3, 4, 5, 11, 12, 13, 14}));
  EXPECT_EQ(entries[2].figures, (std::vector<int>{15, 16}));
  EXPECT_EQ(entries[1].config.totalCores(), 12);
  EXPECT_EQ(entries[2].config.totalCores(), 32);
}

TEST(ArchRegistry, LookupByName) {
  EXPECT_EQ(archByName("nehalem_x5650_2s").config.sockets, 2);
  EXPECT_THROW(archByName("pentium4"), McError);
}

TEST(Csv, MeasurementRowsRender) {
  Measurement m;
  m.cyclesPerIteration = stats::summarize({2.0, 2.5, 3.0});
  m.iterationsPerCall = 128;
  csv::Table table = MicroLauncher::toCsv({{"kernel_u8", m}});
  std::string text = table.toString();
  EXPECT_NE(text.find("configuration"), std::string::npos);
  EXPECT_NE(text.find("kernel_u8"), std::string::npos);
  EXPECT_NE(text.find("2.0000"), std::string::npos);
  EXPECT_NE(text.find("3.0000"), std::string::npos);
}

TEST(Launcher, RequiresBackend) {
  EXPECT_THROW(MicroLauncher(nullptr), McError);
}

}  // namespace
}  // namespace microtools::launcher
