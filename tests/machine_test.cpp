#include <gtest/gtest.h>

#include "asmparse/asmparse.hpp"
#include "sim/machine.hpp"
#include "support/error.hpp"
#include "test_helpers.hpp"

namespace microtools::sim {
namespace {

MachineConfig cfg() { return nehalemX5650DualSocket(); }

asmparse::Program loadProgram(int unroll) {
  static std::map<int, asmparse::Program> cache;
  auto it = cache.find(unroll);
  if (it == cache.end()) {
    auto programs = microtools::testing::generate(
        microtools::testing::figure6Xml(unroll, unroll, false));
    it = cache.emplace(unroll,
                       asmparse::parseAssembly(programs[0].asmText)).first;
  }
  return it->second;
}

TEST(Pinning, CompactFillsSocketFirst) {
  MachineConfig m = cfg();  // 2 sockets x 6 cores
  EXPECT_EQ(MultiCoreRunner::compactPin(m, 0), 0);
  EXPECT_EQ(MultiCoreRunner::compactPin(m, 5), 5);
  EXPECT_EQ(MultiCoreRunner::compactPin(m, 6), 6);
}

TEST(Pinning, ScatterAlternatesSockets) {
  MachineConfig m = cfg();
  EXPECT_EQ(MultiCoreRunner::scatterPin(m, 0), 0);   // socket 0
  EXPECT_EQ(MultiCoreRunner::scatterPin(m, 1), 6);   // socket 1
  EXPECT_EQ(MultiCoreRunner::scatterPin(m, 2), 1);   // socket 0
  EXPECT_EQ(MultiCoreRunner::scatterPin(m, 3), 7);   // socket 1
}

TEST(MultiCore, SingleWorkMatchesCoreSim) {
  asmparse::Program p = loadProgram(4);
  MultiCoreRunner runner(cfg());
  CoreWork w;
  w.program = &p;
  w.n = 4096;
  w.arrayAddrs = {0x100000000ull};
  auto results = runner.run({w});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].iterations, 4096u / 16 + 1);
  EXPECT_GT(results[0].coreCycles, 0u);
}

TEST(MultiCore, RequiresProgramAndCalls) {
  MultiCoreRunner runner(cfg());
  CoreWork w;
  EXPECT_THROW(runner.run({w}), McError);
  asmparse::Program p = loadProgram(1);
  w.program = &p;
  w.calls = 0;
  EXPECT_THROW(runner.run({w}), McError);
}

TEST(MultiCore, CallsAggregateIterations) {
  asmparse::Program p = loadProgram(2);
  MultiCoreRunner runner(cfg());
  CoreWork w;
  w.program = &p;
  w.n = 800;
  w.arrayAddrs = {0x100000000ull};
  w.calls = 3;
  auto results = runner.run({w});
  EXPECT_EQ(results[0].iterations, 3u * (800 / 8 + 1));
}

TEST(MultiCore, DistinctCoresRunConcurrently) {
  // Two cores on L1-resident private arrays take about as long as one, not
  // twice as long.
  asmparse::Program p = loadProgram(8);
  auto runWith = [&p](int cores) {
    MultiCoreRunner runner(cfg());
    std::vector<CoreWork> work;
    for (int c = 0; c < cores; ++c) {
      CoreWork w;
      w.program = &p;
      w.n = 4096;
      w.arrayAddrs = {0x100000000ull +
                      static_cast<std::uint64_t>(c) * 0x10000000ull};
      w.physicalCore = c;
      w.calls = 2;
      work.push_back(w);
    }
    auto results = runner.run(work);
    std::uint64_t maxCycles = 0;
    for (const auto& r : results) maxCycles = std::max(maxCycles, r.coreCycles);
    return maxCycles;
  };
  std::uint64_t one = runWith(1);
  std::uint64_t two = runWith(2);
  EXPECT_LT(two, one * 3 / 2);
}

TEST(MultiCore, SharedMemoryBandwidthDegradesManyCores) {
  // RAM-resident streams: per-core cycles/iteration at 6 cores on one
  // socket must exceed the single-core value (channel contention).
  asmparse::Program p = loadProgram(8);
  auto perIter = [&p](int cores) {
    MachineConfig m = cfg();
    MultiCoreRunner runner(m);
    std::vector<CoreWork> work;
    for (int c = 0; c < cores; ++c) {
      CoreWork w;
      w.program = &p;
      w.n = 1 << 20;  // 4 MiB per array pass, cold caches
      w.arrayAddrs = {0x100000000ull +
                      static_cast<std::uint64_t>(c) * 0x40000000ull};
      w.physicalCore = c;  // compact: all on socket 0
      work.push_back(w);
    }
    auto results = runner.run(work);
    double worst = 0;
    for (const auto& r : results) {
      worst = std::max(worst, static_cast<double>(r.coreCycles) /
                                  static_cast<double>(r.iterations));
    }
    return worst;
  };
  EXPECT_GT(perIter(6), perIter(1) * 1.5);
}

TEST(MultiCore, ScatterBeatsCompactForBandwidth) {
  // Spreading 4 RAM-bound processes over both sockets uses twice the
  // channels: scatter must be faster than compact.
  asmparse::Program p = loadProgram(8);
  auto worstPerIter = [&p](bool scatter) {
    MachineConfig m = cfg();
    MultiCoreRunner runner(m);
    std::vector<CoreWork> work;
    for (int c = 0; c < 4; ++c) {
      CoreWork w;
      w.program = &p;
      w.n = 1 << 20;
      std::uint64_t base = 0x100000000ull +
                           static_cast<std::uint64_t>(c) * 0x40000000ull;
      w.arrayAddrs = {base};
      w.physicalCore = scatter ? MultiCoreRunner::scatterPin(m, c)
                               : MultiCoreRunner::compactPin(m, c);
      runner.memory().setHomeSocket(
          base, 0x40000000ull, runner.memory().socketOfCore(w.physicalCore));
      work.push_back(w);
    }
    auto results = runner.run(work);
    double worst = 0;
    for (const auto& r : results) {
      worst = std::max(worst, static_cast<double>(r.coreCycles) /
                                  static_cast<double>(r.iterations));
    }
    return worst;
  };
  EXPECT_LT(worstPerIter(true), worstPerIter(false));
}

// ---------------------------------------------------------------------------
// OpenMP model
// ---------------------------------------------------------------------------

TEST(OpenMpModel, SplitsIterationsAcrossThreads) {
  asmparse::Program p = loadProgram(1);
  OpenMpModel model(cfg());
  OmpRegionResult r = model.runParallelFor(p, 40000, {0x100000000ull}, 4, 4);
  ASSERT_EQ(r.threads.size(), 4u);
  // Each thread runs ~n/4 elements; iterations counted per thread chunk.
  std::uint64_t total = 0;
  for (const auto& t : r.threads) total += t.iterations;
  EXPECT_EQ(total, r.totalIterations);
  EXPECT_NEAR(static_cast<double>(r.threads[0].iterations),
              static_cast<double>(r.threads[3].iterations), 8.0);
}

TEST(OpenMpModel, RegionIncludesForkJoinOverhead) {
  asmparse::Program p = loadProgram(1);
  MachineConfig m = cfg();
  OpenMpModel model(m);
  OmpRegionResult r = model.runParallelFor(p, 400, {0x100000000ull}, 4, 4);
  std::uint64_t overhead =
      m.nsToCoreCycles(m.ompForkJoinNs + 4 * m.ompPerThreadNs);
  EXPECT_GE(r.regionCoreCycles, overhead);
}

TEST(OpenMpModel, MoreThreadsHelpLargeArrays) {
  asmparse::Program p = loadProgram(8);
  MachineConfig m = sandyBridgeE31240();
  auto regionCycles = [&p, &m](int threads) {
    OpenMpModel model(m);
    // 6M-element style workload, scaled down: 1M floats.
    return model
        .runRepeated(p, 1 << 20, {0x100000000ull}, 4, threads, 2)
        .regionCoreCycles;
  };
  EXPECT_LT(regionCycles(4), regionCycles(1));
}

TEST(OpenMpModel, OverheadDominatesTinyArrays) {
  // For a tiny trip count the parallel region is NOT faster than one
  // thread (the paper's Table-2 observation about OpenMP overhead).
  asmparse::Program p = loadProgram(1);
  MachineConfig m = sandyBridgeE31240();
  auto regionCycles = [&p, &m](int threads) {
    OpenMpModel model(m);
    return model.runRepeated(p, 2048, {0x100000000ull}, 4, threads, 3)
        .regionCoreCycles;
  };
  EXPECT_GE(static_cast<double>(regionCycles(4)),
            0.8 * static_cast<double>(regionCycles(1)));
}

TEST(OpenMpModel, ValidatesArguments) {
  asmparse::Program p = loadProgram(1);
  OpenMpModel model(cfg());
  EXPECT_THROW(model.runParallelFor(p, 100, {0x1000}, 4, 0), McError);
  EXPECT_THROW(model.runParallelFor(p, 100, {0x1000}, 4, 99), McError);
  EXPECT_THROW(model.runRepeated(p, 100, {0x1000}, 4, 2, 0), McError);
}

}  // namespace
}  // namespace microtools::sim
