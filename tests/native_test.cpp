#include <gtest/gtest.h>

#include "launcher/protocol.hpp"
#include "native/affinity.hpp"
#include "native/compile.hpp"
#include "native/native_backend.hpp"
#include "native/timing.hpp"
#include "support/error.hpp"
#include "test_helpers.hpp"

namespace microtools::native {
namespace {

using testing::figure6Xml;
using testing::generate;

// These tests execute real machine code on the host. Functional assertions
// only — host timing is asserted merely to be positive/ordered loosely.

TEST(Timing, TscIsMonotonic) {
  std::uint64_t a = readTsc();
  std::uint64_t b = readTsc();
  EXPECT_GE(b, a);
}

TEST(Timing, OverheadIsSmallAndPositive) {
  double ov = tscOverheadCycles();
  EXPECT_GE(ov, 0.0);
  EXPECT_LT(ov, 10000.0);
}

TEST(Affinity, AvailableCoresPositive) {
  EXPECT_GE(availableCores(), 1);
}

TEST(Affinity, PinToCoreDoesNotCrash) {
  // May fail in restricted cpusets; either result is acceptable.
  (void)pinToCore(0);
  SUCCEED();
}

TEST(Compile, AssemblyKernelCompilesAndRuns) {
  auto programs = generate(figure6Xml(4, 4, false));
  CompiledKernel kernel(programs[0].asmText, "asm", "microkernel");
  std::vector<char> buffer(1 << 16, 0);
  void* ptrs[1] = {buffer.data()};
  int iterations = kernel.call(4096, ptrs, 1);
  EXPECT_EQ(iterations, 4096 / 16 + 1);
}

TEST(Compile, CSourceKernelCompilesAndRuns) {
  const char* src = R"(
int microkernel(int n, void* a) {
  volatile float* p = (volatile float*)a;
  int i;
  float acc = 0;
  for (i = 0; i < n; i++) acc += p[i];
  return n;
}
)";
  CompiledKernel kernel(src, "c", "microkernel");
  std::vector<float> buffer(1024, 1.0f);
  void* ptrs[1] = {buffer.data()};
  EXPECT_EQ(kernel.call(1024, ptrs, 1), 1024);
}

TEST(Compile, EmittedCSourceMatchesAssemblySemantics) {
  // The creator's C output must compute the same iteration count as its
  // assembly output when both run natively.
  std::string xml = figure6Xml(3, 3, false);
  xml.insert(xml.find("<kernel>"), "<emit_c/>");
  auto programs = generate(xml);
  ASSERT_FALSE(programs[0].cText.empty());
  CompiledKernel fromAsm(programs[0].asmText, "asm", "microkernel");
  CompiledKernel fromC(programs[0].cText, "c", "microkernel");
  std::vector<char> buffer(1 << 16, 0);
  void* ptrs[1] = {buffer.data()};
  EXPECT_EQ(fromAsm.call(8192, ptrs, 1), fromC.call(8192, ptrs, 1));
}

TEST(Compile, BadSourceReportsCompilerOutput) {
  try {
    CompiledKernel bad("this is not assembly", "asm", "f");
    FAIL() << "expected ExecutionError";
  } catch (const ExecutionError& e) {
    EXPECT_NE(std::string(e.what()).find("compiler failed"),
              std::string::npos);
  }
}

TEST(Compile, MissingSymbolThrows) {
  auto programs = generate(figure6Xml(1, 1, false));
  EXPECT_THROW(CompiledKernel(programs[0].asmText, "asm", "wrong_name"),
               ExecutionError);
}

TEST(Compile, UnsupportedLanguageThrows) {
  EXPECT_THROW(CompiledKernel("x", "fortran", "f"), ExecutionError);
}

TEST(Backend, InvokeReturnsIterationsAndPositiveCycles) {
  NativeBackend backend;
  auto programs = generate(figure6Xml(8, 8, false));
  auto kernel = backend.load(programs[0].asmText, "microkernel");
  launcher::KernelRequest request;
  request.arrays.push_back(launcher::ArraySpec{1 << 16, 4096, 0});
  request.n = (1 << 16) / 4;
  launcher::InvokeResult r = backend.invoke(*kernel, request);
  EXPECT_EQ(r.iterations, static_cast<std::uint64_t>((1 << 16) / 4 / 32 + 1));
  EXPECT_GT(r.tscCycles, 0.0);
}

TEST(Backend, ProtocolRunsEndToEnd) {
  NativeBackend backend;
  auto programs = generate(figure6Xml(4, 4, false));
  auto kernel = backend.load(programs[0].asmText, "microkernel");
  launcher::KernelRequest request;
  request.arrays.push_back(launcher::ArraySpec{1 << 15, 4096, 0});
  request.n = (1 << 15) / 4;
  launcher::ProtocolOptions protocol;
  protocol.innerRepetitions = 4;
  protocol.outerRepetitions = 3;
  launcher::Measurement m =
      launcher::measureKernel(backend, *kernel, request, protocol);
  EXPECT_GT(m.cyclesPerIteration.min, 0.0);
  EXPECT_EQ(m.cyclesPerIteration.count, 3u);
}

TEST(Backend, AlignmentOffsetsHonored) {
  // The kernel must still run correctly with odd array placements.
  NativeBackend backend;
  auto programs = generate(testing::movssLoadXml(2, 2, 2));
  auto kernel = backend.load(programs[0].asmText, "microkernel");
  launcher::KernelRequest request;
  request.arrays.push_back(launcher::ArraySpec{1 << 14, 4096, 48});
  request.arrays.push_back(launcher::ArraySpec{1 << 14, 4096, 1028});
  request.n = (1 << 14) / 4;
  launcher::InvokeResult r = backend.invoke(*kernel, request);
  EXPECT_GT(r.iterations, 0u);
}

TEST(Backend, ForkCollectsOneResultPerProcess) {
  NativeBackend backend;
  auto programs = generate(figure6Xml(2, 2, false));
  auto kernel = backend.load(programs[0].asmText, "microkernel");
  launcher::KernelRequest request;
  request.arrays.push_back(launcher::ArraySpec{1 << 14, 4096, 0});
  request.n = (1 << 14) / 4;
  auto results = backend.invokeFork(*kernel, request, 2, 3,
                                    launcher::PinPolicy::Compact);
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) {
    EXPECT_EQ(r.iterations, 3u * ((1 << 14) / 4 / 8 + 1));
    EXPECT_GT(r.tscCycles, 0.0);
  }
}

TEST(Backend, OpenMpRunsAllIterations) {
  NativeBackend backend;
  auto programs = generate(testing::movssLoadXml(1, 1));
  auto kernel = backend.load(programs[0].asmText, "microkernel");
  launcher::KernelRequest request;
  request.arrays.push_back(launcher::ArraySpec{1 << 16, 4096, 0});
  request.n = (1 << 16) / 4;
  launcher::InvokeResult r = backend.invokeOpenMp(*kernel, request, 2, 2);
  EXPECT_GT(r.iterations, 0u);
  EXPECT_GT(r.tscCycles, 0.0);
}

TEST(Backend, ValidatesForkAndOmpArguments) {
  NativeBackend backend;
  auto programs = generate(figure6Xml(1, 1, false));
  auto kernel = backend.load(programs[0].asmText, "microkernel");
  launcher::KernelRequest request;
  request.arrays.push_back(launcher::ArraySpec{4096, 4096, 0});
  request.n = 1024;
  EXPECT_THROW(backend.invokeFork(*kernel, request, 0, 1,
                                  launcher::PinPolicy::Compact),
               McError);
  EXPECT_THROW(backend.invokeOpenMp(*kernel, request, 0, 1), McError);
  EXPECT_THROW(backend.invokeOpenMp(*kernel, request, 2, 0), McError);
}

}  // namespace
}  // namespace microtools::native
