#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <utility>
#include <vector>

#if defined(__linux__)
#include <linux/perf_event.h>
#endif

#include "launcher/campaign.hpp"
#include "launcher/protocol.hpp"
#include "native/affinity.hpp"
#include "native/compile.hpp"
#include "native/native_backend.hpp"
#include "native/perf_counters.hpp"
#include "native/timing.hpp"
#include "support/error.hpp"
#include "test_helpers.hpp"

namespace microtools::native {
namespace {

namespace fs = std::filesystem;

using testing::figure6Xml;
using testing::generate;

/// A fresh directory under the system temp dir, removed at scope exit.
struct TempDir {
  std::string path;
  TempDir() {
    static int counter = 0;
    path = (fs::temp_directory_path() /
            ("microtools_native_test_" + std::to_string(getpid()) + "_" +
             std::to_string(counter++)))
               .string();
    fs::remove_all(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

/// Sets $CC for the scope and drops the identity memo on both edges, so the
/// override takes effect immediately and never leaks into later tests.
struct ScopedCc {
  explicit ScopedCc(const std::string& cc) {
    const char* old = std::getenv("CC");
    if (old) previous_ = old;
    setenv("CC", cc.c_str(), 1);
    clearCompilerIdentityMemo();
  }
  ~ScopedCc() {
    if (previous_.empty()) {
      unsetenv("CC");
    } else {
      setenv("CC", previous_.c_str(), 1);
    }
    clearCompilerIdentityMemo();
  }

 private:
  std::string previous_;
};

// These tests execute real machine code on the host. Functional assertions
// only — host timing is asserted merely to be positive/ordered loosely.

TEST(Timing, TscIsMonotonic) {
  std::uint64_t a = readTsc();
  std::uint64_t b = readTsc();
  EXPECT_GE(b, a);
}

TEST(Timing, OverheadIsSmallAndPositive) {
  double ov = tscOverheadCycles();
  EXPECT_GE(ov, 0.0);
  EXPECT_LT(ov, 10000.0);
}

TEST(Affinity, AvailableCoresPositive) {
  EXPECT_GE(availableCores(), 1);
}

TEST(Affinity, PinToCoreDoesNotCrash) {
  // May fail in restricted cpusets; either result is acceptable.
  (void)pinToCore(0);
  SUCCEED();
}

TEST(Compile, AssemblyKernelCompilesAndRuns) {
  auto programs = generate(figure6Xml(4, 4, false));
  CompiledKernel kernel(programs[0].asmText, "asm", "microkernel");
  std::vector<char> buffer(1 << 16, 0);
  void* ptrs[1] = {buffer.data()};
  int iterations = kernel.call(4096, ptrs, 1);
  EXPECT_EQ(iterations, 4096 / 16 + 1);
}

TEST(Compile, CSourceKernelCompilesAndRuns) {
  const char* src = R"(
int microkernel(int n, void* a) {
  volatile float* p = (volatile float*)a;
  int i;
  float acc = 0;
  for (i = 0; i < n; i++) acc += p[i];
  return n;
}
)";
  CompiledKernel kernel(src, "c", "microkernel");
  std::vector<float> buffer(1024, 1.0f);
  void* ptrs[1] = {buffer.data()};
  EXPECT_EQ(kernel.call(1024, ptrs, 1), 1024);
}

TEST(Compile, EmittedCSourceMatchesAssemblySemantics) {
  // The creator's C output must compute the same iteration count as its
  // assembly output when both run natively.
  std::string xml = figure6Xml(3, 3, false);
  xml.insert(xml.find("<kernel>"), "<emit_c/>");
  auto programs = generate(xml);
  ASSERT_FALSE(programs[0].cText.empty());
  CompiledKernel fromAsm(programs[0].asmText, "asm", "microkernel");
  CompiledKernel fromC(programs[0].cText, "c", "microkernel");
  std::vector<char> buffer(1 << 16, 0);
  void* ptrs[1] = {buffer.data()};
  EXPECT_EQ(fromAsm.call(8192, ptrs, 1), fromC.call(8192, ptrs, 1));
}

TEST(Compile, BadSourceReportsCompilerOutput) {
  try {
    CompiledKernel bad("this is not assembly", "asm", "f");
    FAIL() << "expected ExecutionError";
  } catch (const ExecutionError& e) {
    EXPECT_NE(std::string(e.what()).find("compiler failed"),
              std::string::npos);
  }
}

TEST(Compile, MissingSymbolThrows) {
  auto programs = generate(figure6Xml(1, 1, false));
  EXPECT_THROW(CompiledKernel(programs[0].asmText, "asm", "wrong_name"),
               ExecutionError);
}

TEST(Compile, UnsupportedLanguageThrows) {
  EXPECT_THROW(CompiledKernel("x", "fortran", "f"), ExecutionError);
}

TEST(Compile, MoveSemanticsTransferOwnership) {
  auto programs = generate(figure6Xml(4, 4, false));
  std::vector<char> buffer(1 << 16, 0);
  void* ptrs[1] = {buffer.data()};

  CompiledKernel a(programs[0].asmText, "asm", "microkernel");
  std::string soPath = a.sharedObjectPath();
  EXPECT_FALSE(soPath.empty());

  CompiledKernel b = std::move(a);  // move construction
  EXPECT_EQ(b.sharedObjectPath(), soPath);
  EXPECT_EQ(b.call(4096, ptrs, 1), 4096 / 16 + 1);

  CompiledKernel c(programs[0].asmText, "asm", "microkernel");
  c = std::move(b);  // move assignment over a live kernel
  EXPECT_EQ(c.sharedObjectPath(), soPath);
  EXPECT_EQ(c.call(4096, ptrs, 1), 4096 / 16 + 1);

  c = std::move(c);  // self-move must not destroy the kernel
  EXPECT_EQ(c.call(4096, ptrs, 1), 4096 / 16 + 1);
}

TEST(Compile, FailedCompilationLeavesNoTempFiles) {
  std::string tmp = fs::temp_directory_path().string();
  auto countTempFiles = [&tmp] {
    std::size_t count = 0;
    std::string prefix = "microtools_" + std::to_string(getpid()) + "_";
    for (const fs::directory_entry& entry : fs::directory_iterator(tmp)) {
      if (entry.path().filename().string().rfind(prefix, 0) == 0) ++count;
    }
    return count;
  };
  std::size_t before = countTempFiles();
  EXPECT_THROW(CompiledKernel("this is not assembly", "asm", "f"),
               ExecutionError);
  EXPECT_THROW(CompiledKernel("not C either @!#", "c", "f"), ExecutionError);
  EXPECT_EQ(countTempFiles(), before);
}

TEST(Compile, SignalDeathIsDiagnosable) {
  // A compiler that dies by signal must produce an ExecutionError naming
  // the signal, not a generic failure (the old popen/pclose path compared
  // the raw status to 0 and lost that information).
  TempDir dir;
  fs::create_directories(dir.path);
  std::string script = dir.path + "/killed-cc";
  {
    std::ofstream out(script);
    out << "#!/bin/sh\nkill -SEGV $$\n";
  }
  chmod(script.c_str(), 0755);
  ScopedCc cc(script);
  try {
    CompiledKernel kernel("whatever", "asm", "f");
    FAIL() << "expected ExecutionError";
  } catch (const ExecutionError& e) {
    std::string message = e.what();
    EXPECT_NE(message.find("compiler failed"), std::string::npos) << message;
    EXPECT_NE(message.find("signal"), std::string::npos) << message;
  }
}

TEST(Compile, MissingCompilerReportsSpawnFailure) {
  ScopedCc cc("/nonexistent/compiler-binary");
  EXPECT_THROW(CompiledKernel("x", "asm", "f"), ExecutionError);
}

TEST(Compile, RenameIdentifierRespectsBoundaries) {
  EXPECT_EQ(CompileBatch::renameIdentifier(
                "\t.globl f\n\t.type f, @function\nf:\n\t.size f, .-f\n", "f",
                "f_mtb0"),
            "\t.globl f_mtb0\n\t.type f_mtb0, @function\nf_mtb0:\n"
            "\t.size f_mtb0, .-f_mtb0\n");
  // Substrings of longer identifiers must survive.
  EXPECT_EQ(CompileBatch::renameIdentifier("ff f fx _f f$", "f", "g"),
            "ff g fx _f f$");
  // '.' is a boundary (assembler directives and .-f expressions).
  EXPECT_EQ(CompileBatch::renameIdentifier(".f f.b", "f", "g"), ".g g.b");
}

TEST(Compile, BatchUniquifiesDuplicateFunctionNames) {
  // Two variants exporting the same entry symbol — the whole point of the
  // rename: one shared object cannot hold two globals named "microkernel".
  auto programs = generate(figure6Xml(2, 3, false));
  ASSERT_GE(programs.size(), 2u);
  std::vector<launcher::SourceUnit> units = {
      {"asm", programs[0].asmText, "microkernel"},
      {"asm", programs[1].asmText, "microkernel"},
  };

  compilerIdentity();  // resolve outside the measured window
  std::uint64_t spawns = spawnCount();
  CompileBatch batch;
  auto kernels = batch.compile(units);
  EXPECT_EQ(spawnCount() - spawns, 1u) << "batch must use ONE invocation";

  ASSERT_EQ(kernels.size(), 2u);
  ASSERT_TRUE(kernels[0].has_value());
  ASSERT_TRUE(kernels[1].has_value());
  EXPECT_EQ(kernels[0]->sharedObjectPath(), kernels[1]->sharedObjectPath());

  // Each batch kernel must behave exactly like its serially compiled twin.
  CompiledKernel ref0(programs[0].asmText, "asm", "microkernel");
  CompiledKernel ref1(programs[1].asmText, "asm", "microkernel");
  std::vector<char> buffer(1 << 16, 0);
  void* ptrs[1] = {buffer.data()};
  EXPECT_EQ(kernels[0]->call(4096, ptrs, 1), ref0.call(4096, ptrs, 1));
  EXPECT_EQ(kernels[1]->call(4096, ptrs, 1), ref1.call(4096, ptrs, 1));
  EXPECT_NE(kernels[0]->call(4096, ptrs, 1), kernels[1]->call(4096, ptrs, 1));
}

TEST(Compile, CacheHitMissAndCorruptionRoundTrip) {
  TempDir cache;
  auto programs = generate(figure6Xml(4, 4, false));
  launcher::SourceUnit unit{"asm", programs[0].asmText, "microkernel"};
  CompileOptions options{cache.path};
  std::vector<char> buffer(1 << 16, 0);
  void* ptrs[1] = {buffer.data()};

  // Scoped so the shared object is unloaded again before the corruption
  // stage below (a still-mapped library shares the inode the corruption
  // overwrites — the real-world corruption scenario is between processes).
  std::string cachedSo;
  {
    // Miss: compiles and publishes.
    std::uint64_t spawns = spawnCount();
    CompiledKernel cold = CompileBatch(options).compileOne(unit);
    EXPECT_GE(spawnCount() - spawns, 1u);
    EXPECT_EQ(cold.call(4096, ptrs, 1), 4096 / 16 + 1);
    cachedSo = cold.sharedObjectPath();
    EXPECT_EQ(fs::path(cachedSo).parent_path().string(), cache.path);

    // Hit, simulating a fresh process: zero spawns — even the --version
    // probe is served by the persisted compiler.id record.
    clearCompilerIdentityMemo();
    spawns = spawnCount();
    CompiledKernel warm = CompileBatch(options).compileOne(unit);
    EXPECT_EQ(spawnCount() - spawns, 0u);
    EXPECT_EQ(warm.sharedObjectPath(), cachedSo);
    EXPECT_EQ(warm.call(4096, ptrs, 1), 4096 / 16 + 1);

    // A different source is a different key, not a collision.
    auto other = generate(figure6Xml(2, 2, false));
    CompiledKernel different =
        CompileBatch(options).compileOne({"asm", other[0].asmText,
                                          "microkernel"});
    EXPECT_NE(different.sharedObjectPath(), cachedSo);
  }

  // Corruption: garbage where the .so was must recompile, never fail.
  {
    std::ofstream out(cachedSo, std::ios::binary | std::ios::trunc);
    out << "garbage, not an ELF shared object";
  }
  std::uint64_t spawns = spawnCount();
  CompiledKernel recompiled = CompileBatch(options).compileOne(unit);
  EXPECT_GE(spawnCount() - spawns, 1u);
  EXPECT_EQ(recompiled.call(4096, ptrs, 1), 4096 / 16 + 1);
}

TEST(Compile, BatchWarmCacheRerunSpawnsNothing) {
  TempDir cache;
  auto programs = generate(figure6Xml(1, 4, false));
  std::vector<launcher::SourceUnit> units;
  for (const auto& p : programs) {
    units.push_back({"asm", p.asmText, p.functionName});
  }
  CompileOptions options{cache.path};
  auto cold = CompileBatch(options).compile(units);
  ASSERT_EQ(cold.size(), units.size());

  clearCompilerIdentityMemo();  // simulate a fresh process
  std::uint64_t spawns = spawnCount();
  auto warm = CompileBatch(options).compile(units);
  EXPECT_EQ(spawnCount() - spawns, 0u);

  std::vector<char> buffer(1 << 16, 0);
  void* ptrs[1] = {buffer.data()};
  for (std::size_t i = 0; i < units.size(); ++i) {
    ASSERT_TRUE(cold[i].has_value());
    ASSERT_TRUE(warm[i].has_value());
    EXPECT_EQ(cold[i]->call(4096, ptrs, 1), warm[i]->call(4096, ptrs, 1));
  }
}

TEST(Backend, InvokeReturnsIterationsAndPositiveCycles) {
  NativeBackend backend;
  auto programs = generate(figure6Xml(8, 8, false));
  auto kernel = backend.load(programs[0].asmText, "microkernel");
  launcher::KernelRequest request;
  request.arrays.push_back(launcher::ArraySpec{1 << 16, 4096, 0});
  request.n = (1 << 16) / 4;
  launcher::InvokeResult r = backend.invoke(*kernel, request);
  EXPECT_EQ(r.iterations, static_cast<std::uint64_t>((1 << 16) / 4 / 32 + 1));
  EXPECT_GT(r.tscCycles, 0.0);
}

TEST(Backend, ProtocolRunsEndToEnd) {
  NativeBackend backend;
  auto programs = generate(figure6Xml(4, 4, false));
  auto kernel = backend.load(programs[0].asmText, "microkernel");
  launcher::KernelRequest request;
  request.arrays.push_back(launcher::ArraySpec{1 << 15, 4096, 0});
  request.n = (1 << 15) / 4;
  launcher::ProtocolOptions protocol;
  protocol.innerRepetitions = 4;
  protocol.outerRepetitions = 3;
  launcher::Measurement m =
      launcher::measureKernel(backend, *kernel, request, protocol);
  EXPECT_GT(m.cyclesPerIteration.min, 0.0);
  EXPECT_EQ(m.cyclesPerIteration.count, 3u);
}

TEST(Backend, AlignmentOffsetsHonored) {
  // The kernel must still run correctly with odd array placements.
  NativeBackend backend;
  auto programs = generate(testing::movssLoadXml(2, 2, 2));
  auto kernel = backend.load(programs[0].asmText, "microkernel");
  launcher::KernelRequest request;
  request.arrays.push_back(launcher::ArraySpec{1 << 14, 4096, 48});
  request.arrays.push_back(launcher::ArraySpec{1 << 14, 4096, 1028});
  request.n = (1 << 14) / 4;
  launcher::InvokeResult r = backend.invoke(*kernel, request);
  EXPECT_GT(r.iterations, 0u);
}

TEST(Backend, ForkCollectsOneResultPerProcess) {
  NativeBackend backend;
  auto programs = generate(figure6Xml(2, 2, false));
  auto kernel = backend.load(programs[0].asmText, "microkernel");
  launcher::KernelRequest request;
  request.arrays.push_back(launcher::ArraySpec{1 << 14, 4096, 0});
  request.n = (1 << 14) / 4;
  auto results = backend.invokeFork(*kernel, request, 2, 3,
                                    launcher::PinPolicy::Compact);
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) {
    EXPECT_EQ(r.iterations, 3u * ((1 << 14) / 4 / 8 + 1));
    EXPECT_GT(r.tscCycles, 0.0);
  }
}

TEST(Backend, OpenMpRunsAllIterations) {
  NativeBackend backend;
  auto programs = generate(testing::movssLoadXml(1, 1));
  auto kernel = backend.load(programs[0].asmText, "microkernel");
  launcher::KernelRequest request;
  request.arrays.push_back(launcher::ArraySpec{1 << 16, 4096, 0});
  request.n = (1 << 16) / 4;
  launcher::InvokeResult r = backend.invokeOpenMp(*kernel, request, 2, 2);
  EXPECT_GT(r.iterations, 0u);
  EXPECT_GT(r.tscCycles, 0.0);
}

TEST(Backend, LoadBatchIsolatesBadUnits) {
  NativeBackend backend;
  auto programs = generate(figure6Xml(4, 4, false));
  std::vector<launcher::SourceUnit> units = {
      {"asm", programs[0].asmText, "microkernel"},
      {"asm", "this is not assembly", "microkernel"},
      {"asm", programs[0].asmText, "microkernel"},
  };
  auto handles = backend.loadBatch(units);
  ASSERT_EQ(handles.size(), 3u);
  ASSERT_NE(handles[0], nullptr);
  EXPECT_EQ(handles[1], nullptr);  // the broken unit, not the whole batch
  ASSERT_NE(handles[2], nullptr);

  launcher::KernelRequest request;
  request.arrays.push_back(launcher::ArraySpec{1 << 16, 4096, 0});
  request.n = 4096;
  launcher::InvokeResult a = backend.invoke(*handles[0], request);
  launcher::InvokeResult b = backend.invoke(*handles[2], request);
  EXPECT_EQ(a.iterations, static_cast<std::uint64_t>(4096 / 16 + 1));
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(Backend, PrepareBatchYieldsLoadableSharedObjectUnits) {
  // The campaign pipeline's contract: units prepared on one backend must be
  // loadable by loadSource on ANOTHER backend instance (the measurement
  // worker's), and a unit that cannot be prepared comes back unchanged.
  NativeBackend compileBackend;
  auto programs = generate(figure6Xml(1, 2, false));
  std::vector<launcher::SourceUnit> units = {
      {"asm", programs[0].asmText, "microkernel"},
      {"asm", "broken (", "microkernel"},
      {"asm", programs[1].asmText, "microkernel"},
  };
  auto prepared = compileBackend.prepareBatch(units);
  ASSERT_EQ(prepared.size(), 3u);
  EXPECT_EQ(prepared[0].kind, "so");
  EXPECT_EQ(prepared[1].kind, "asm");  // unpreparable: unchanged
  EXPECT_EQ(prepared[1].text, "broken (");
  EXPECT_EQ(prepared[2].kind, "so");

  NativeBackend measureBackend;
  auto k0 = measureBackend.loadSource(prepared[0].kind, prepared[0].text,
                                      prepared[0].functionName);
  auto k2 = measureBackend.loadSource(prepared[2].kind, prepared[2].text,
                                      prepared[2].functionName);
  launcher::KernelRequest request;
  request.arrays.push_back(launcher::ArraySpec{1 << 16, 4096, 0});
  request.n = 4096;
  EXPECT_EQ(measureBackend.invoke(*k0, request).iterations,
            static_cast<std::uint64_t>(4096 / 4 + 1));  // unroll 1
  EXPECT_EQ(measureBackend.invoke(*k2, request).iterations,
            static_cast<std::uint64_t>(4096 / 8 + 1));  // unroll 2
}

TEST(Backend, PipelinedNativeCampaignMatchesInlineCompilation) {
  auto programs = generate(figure6Xml(1, 6, false));
  std::vector<launcher::CampaignVariant> variants =
      launcher::variantsFromPrograms(programs);
  ASSERT_GE(variants.size(), 6u);

  TempDir cache;
  launcher::BackendFactory factory = [&cache](int) {
    NativeBackendOptions options;
    options.compileCacheDir = cache.path;
    return std::make_unique<NativeBackend>(std::move(options));
  };
  launcher::KernelRequest request;
  request.arrays.push_back(launcher::ArraySpec{1 << 16, 4096, 0});
  request.n = 4096;

  auto runWith = [&](int compileJobs) {
    launcher::CampaignOptions options;
    options.jobs = 2;
    options.protocol.innerRepetitions = 1;
    options.protocol.outerRepetitions = 2;
    options.maxCv = 0;  // fixed repetitions: host timing never converges
    options.compileJobs = compileJobs;
    options.compileBatch = 4;
    launcher::CampaignRunner runner(factory, options);
    return runner.run(variants, request);
  };

  std::vector<launcher::VariantResult> inline_ = runWith(0);
  std::vector<launcher::VariantResult> pipelined = runWith(2);
  ASSERT_EQ(inline_.size(), pipelined.size());
  for (std::size_t i = 0; i < inline_.size(); ++i) {
    EXPECT_EQ(pipelined[i].sequence, i);
    EXPECT_EQ(inline_[i].status, "ok") << inline_[i].error;
    EXPECT_EQ(pipelined[i].status, "ok") << pipelined[i].error;
    // Host cycle counts jitter; the deterministic part — which kernel ran,
    // how many iterations it reported — must agree exactly.
    EXPECT_EQ(inline_[i].measurement.iterationsPerCall,
              pipelined[i].measurement.iterationsPerCall)
        << "variant " << i;
  }
}

TEST(Backend, ValidatesForkAndOmpArguments) {
  NativeBackend backend;
  auto programs = generate(figure6Xml(1, 1, false));
  auto kernel = backend.load(programs[0].asmText, "microkernel");
  launcher::KernelRequest request;
  request.arrays.push_back(launcher::ArraySpec{4096, 4096, 0});
  request.n = 1024;
  EXPECT_THROW(backend.invokeFork(*kernel, request, 0, 1,
                                  launcher::PinPolicy::Compact),
               McError);
  EXPECT_THROW(backend.invokeOpenMp(*kernel, request, 0, 1), McError);
  EXPECT_THROW(backend.invokeOpenMp(*kernel, request, 2, 0), McError);
}

// ---------------------------------------------------------------------------
// Perf counter groups
// ---------------------------------------------------------------------------

TEST(PerfCounters, ValueLookupByNameHandlesMissingAndInvalid) {
  std::vector<perf::EventSpec> events;
  events.push_back({0, 0, "cycles", true});
  events.push_back({0, 1, "instructions", false});

  perf::CounterSample sample;  // invalid by default
  EXPECT_TRUE(std::isnan(sample.value(events, "cycles")));

  sample.valid = true;
  sample.values = {100.0, 250.0};
  EXPECT_DOUBLE_EQ(sample.value(events, "cycles"), 100.0);
  EXPECT_DOUBLE_EQ(sample.value(events, "instructions"), 250.0);
  EXPECT_TRUE(std::isnan(sample.value(events, "not_an_event")));
}

TEST(PerfCounters, DefaultHardwareGroupDegradesInsteadOfFailing) {
  // On a machine without a PMU (VMs, containers) or with perf_event access
  // forbidden, the group must come up unavailable with a reason — never
  // throw — and its start/stop must be harmless no-ops.
  perf::CounterGroup group(perf::CounterGroup::defaultHardwareEvents());
  if (!group.available()) {
    EXPECT_FALSE(group.unavailableReason().empty());
    group.start();
    perf::CounterSample sample = group.stop();
    EXPECT_FALSE(sample.valid);
    return;
  }
  // With a real PMU: a busy window must count a plausible number of cycles.
  group.start();
  volatile double sink = 1.0;
  for (int i = 0; i < 100000; ++i) sink = sink * 1.0000001 + 0.1;
  perf::CounterSample sample = group.stop();
  ASSERT_TRUE(sample.valid);
  EXPECT_EQ(sample.values.size(), group.events().size());
  EXPECT_GT(sample.value(group.events(), "cycles"), 1000.0);
}

#if defined(__linux__)
TEST(PerfCounters, SoftwareEventGroupCountsABusyWindow) {
  // Software events (task clock, page faults) need no PMU, so this exercises
  // the full open/calibrate/start/stop path even inside a VM — skipped only
  // when perf_event_open itself is forbidden (paranoid level, seccomp).
  std::vector<perf::EventSpec> events;
  events.push_back(
      {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK, "task_clock", true});
  events.push_back(
      {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_PAGE_FAULTS, "page_faults", false});
  perf::CounterGroup group(events);
  if (!group.available()) {
    GTEST_SKIP() << "perf_event_open unavailable: "
                 << group.unavailableReason();
  }
  ASSERT_FALSE(group.events().empty());
  EXPECT_EQ(group.events()[0].name, "task_clock");
  EXPECT_EQ(group.overhead().size(), group.events().size());

  group.start();
  volatile double sink = 1.0;
  for (int i = 0; i < 2000000; ++i) sink = sink * 1.0000001 + 0.1;
  perf::CounterSample sample = group.stop();
  ASSERT_TRUE(sample.valid);
  EXPECT_GT(sample.timeEnabledNs, 0.0);
  // The spin burned real CPU time: task clock counts nanoseconds on-CPU.
  EXPECT_GT(sample.value(group.events(), "task_clock"), 10000.0);

  // A second window works too (the group is reusable).
  group.start();
  perf::CounterSample empty = group.stop();
  EXPECT_TRUE(empty.valid);
}
#endif

TEST(PerfCounters, BackendWithCountersDisabledLeavesMetricsInvalid) {
  NativeBackendOptions options;
  options.perfCounters = false;
  NativeBackend backend(std::move(options));
  auto programs = generate(figure6Xml(1, 1, false));
  auto kernel = backend.load(programs[0].asmText, "microkernel");
  launcher::KernelRequest request;
  request.arrays.push_back(launcher::ArraySpec{1 << 16, 4096, 0});
  request.n = (1 << 16) / 4;
  launcher::InvokeResult r = backend.invoke(*kernel, request);
  EXPECT_GT(r.tscCycles, 0.0);
  EXPECT_FALSE(r.counters.valid);
  EXPECT_TRUE(std::isnan(r.counters.cycles));
}

TEST(PerfCounters, BackendCounterFieldsAreCoherent) {
  // Whether or not this machine grants perf access, the invariant holds:
  // valid counters carry finite cycle counts, invalid ones stay NaN so the
  // CSV layer renders empty cells instead of garbage.
  NativeBackend backend;
  auto programs = generate(figure6Xml(1, 1, false));
  auto kernel = backend.load(programs[0].asmText, "microkernel");
  launcher::KernelRequest request;
  request.arrays.push_back(launcher::ArraySpec{1 << 16, 4096, 0});
  request.n = (1 << 16) / 4;
  launcher::InvokeResult r = backend.invoke(*kernel, request);
  EXPECT_GT(r.tscCycles, 0.0);
  if (r.counters.valid) {
    EXPECT_TRUE(std::isfinite(r.counters.cycles));
    EXPECT_GT(r.counters.cycles, 0.0);
  } else {
    EXPECT_TRUE(std::isnan(r.counters.cycles));
    EXPECT_TRUE(std::isnan(r.counters.instructions));
  }
}

}  // namespace
}  // namespace microtools::native
