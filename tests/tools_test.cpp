// End-to-end tests of the two command-line tools, exercising the same
// binaries a user runs. Each test shells out to the built executables.

#include <gtest/gtest.h>

#include <unistd.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "support/strings.hpp"
#include "test_helpers.hpp"

#ifndef MT_MICROCREATOR_PATH
#error "MT_MICROCREATOR_PATH must be defined by the build"
#endif
#ifndef MT_MICROLAUNCHER_PATH
#error "MT_MICROLAUNCHER_PATH must be defined by the build"
#endif
#ifndef MT_MICROTOOLS_PATH
#error "MT_MICROTOOLS_PATH must be defined by the build"
#endif

namespace microtools {
namespace {

struct CommandResult {
  int exitCode = -1;
  std::string output;
};

CommandResult run(const std::string& command) {
  CommandResult result;
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (!pipe) return result;
  char buffer[512];
  while (std::fgets(buffer, sizeof buffer, pipe)) result.output += buffer;
  int status = pclose(pipe);
  result.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string writeTempXml(const std::string& content, const char* name) {
  // ctest runs each TEST as its own process, possibly in parallel; a
  // per-process path keeps concurrent tests from reading each other's
  // half-written files.
  std::string path = ::testing::TempDir() + "/" +
                     std::to_string(::getpid()) + "_" + name;
  std::ofstream out(path);
  out << content;
  return path;
}

class ToolsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    xmlPath_ = writeTempXml(testing::figure6Xml(1, 4), "tools_test.xml");
    outDir_ = ::testing::TempDir() + "/tools_test_out_" +
              std::to_string(::getpid());
  }

  std::string xmlPath_;
  std::string outDir_;
};

TEST_F(ToolsTest, CreatorGeneratesExpectedCount) {
  CommandResult r = run(std::string(MT_MICROCREATOR_PATH) + " " + xmlPath_ +
                        " --output " + outDir_);
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_NE(r.output.find("generated 30 benchmark program(s)"),
            std::string::npos)
      << r.output;
}

TEST_F(ToolsTest, CreatorNamesOnly) {
  CommandResult r = run(std::string(MT_MICROCREATOR_PATH) + " " + xmlPath_ +
                        " --names-only");
  EXPECT_EQ(r.exitCode, 0);
  EXPECT_NE(r.output.find("loadstore_u1_seqL"), std::string::npos);
  EXPECT_NE(r.output.find("loadstore_u4_seqSSSS"), std::string::npos);
}

TEST_F(ToolsTest, CreatorListPassesShowsNineteen) {
  CommandResult r = run(std::string(MT_MICROCREATOR_PATH) + " --list-passes");
  EXPECT_EQ(r.exitCode, 0);
  EXPECT_NE(r.output.find("19. CodeEmission"), std::string::npos);
  EXPECT_NE(r.output.find("1. ValidateDescription"), std::string::npos);
}

TEST_F(ToolsTest, CreatorMaxOverrideCapsOutput) {
  CommandResult r = run(std::string(MT_MICROCREATOR_PATH) + " " + xmlPath_ +
                        " --max 7 --dry-run");
  EXPECT_EQ(r.exitCode, 0);
  EXPECT_NE(r.output.find("generated 7 benchmark program(s)"),
            std::string::npos);
}

TEST_F(ToolsTest, CreatorRejectsMissingInput) {
  CommandResult r = run(std::string(MT_MICROCREATOR_PATH));
  EXPECT_EQ(r.exitCode, 2);
  EXPECT_NE(r.output.find("no input file"), std::string::npos);
}

TEST_F(ToolsTest, CreatorReportsXmlErrors) {
  std::string bad = writeTempXml("<kernel><instruction>", "tools_bad.xml");
  CommandResult r = run(std::string(MT_MICROCREATOR_PATH) + " " + bad);
  EXPECT_EQ(r.exitCode, 1);
  EXPECT_NE(r.output.find("error:"), std::string::npos);
}

TEST_F(ToolsTest, LauncherMeasuresGeneratedKernelOnSim) {
  ASSERT_EQ(run(std::string(MT_MICROCREATOR_PATH) + " " + xmlPath_ +
                " --output " + outDir_)
                .exitCode,
            0);
  CommandResult r = run(std::string(MT_MICROLAUNCHER_PATH) + " --input " +
                        outDir_ + "/loadstore_u4_seqLLLL.s" +
                        " --array-bytes 16384 --inner 2 --outer 3");
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_NE(r.output.find("cycles_per_iteration_min"), std::string::npos);
  // 16384/4 elements, 16 per trip, +1 (do-while).
  EXPECT_NE(r.output.find(",257,"), std::string::npos) << r.output;
}

TEST_F(ToolsTest, LauncherNativeBackend) {
  ASSERT_EQ(run(std::string(MT_MICROCREATOR_PATH) + " " + xmlPath_ +
                " --output " + outDir_)
                .exitCode,
            0);
  CommandResult r = run(std::string(MT_MICROLAUNCHER_PATH) + " --input " +
                        outDir_ + "/loadstore_u2_seqLL.s" +
                        " --backend native --array-bytes 8192 --inner 2 "
                        "--outer 2");
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_NE(r.output.find(",257,"), std::string::npos) << r.output;
}

TEST_F(ToolsTest, LauncherListArch) {
  CommandResult r = run(std::string(MT_MICROLAUNCHER_PATH) + " --list-arch");
  EXPECT_EQ(r.exitCode, 0);
  EXPECT_NE(r.output.find("nehalem_x5650_2s"), std::string::npos);
  EXPECT_NE(r.output.find("figures 15, 16"), std::string::npos);
}

TEST_F(ToolsTest, LauncherForkMode) {
  ASSERT_EQ(run(std::string(MT_MICROCREATOR_PATH) + " " + xmlPath_ +
                " --output " + outDir_)
                .exitCode,
            0);
  CommandResult r = run(std::string(MT_MICROLAUNCHER_PATH) + " --input " +
                        outDir_ + "/loadstore_u4_seqLLLL.s" +
                        " --cores 2 --fork-calls 1 --array-bytes 8192");
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_NE(r.output.find("process,"), std::string::npos);
  // Two result rows (plus header).
  EXPECT_EQ(std::count(r.output.begin(), r.output.end(), '\n'), 3);
}

TEST_F(ToolsTest, LauncherOpenMpMode) {
  ASSERT_EQ(run(std::string(MT_MICROCREATOR_PATH) + " " + xmlPath_ +
                " --output " + outDir_)
                .exitCode,
            0);
  CommandResult r = run(std::string(MT_MICROLAUNCHER_PATH) + " --input " +
                        outDir_ + "/loadstore_u1_seqL.s" +
                        " --openmp --threads 2 --omp-repetitions 2 "
                        "--array-bytes 65536");
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_NE(r.output.find("threads,"), std::string::npos);
}

TEST_F(ToolsTest, LauncherAlignmentSweep) {
  ASSERT_EQ(run(std::string(MT_MICROCREATOR_PATH) + " " + xmlPath_ +
                " --output " + outDir_)
                .exitCode,
            0);
  CommandResult r = run(std::string(MT_MICROLAUNCHER_PATH) + " --input " +
                        outDir_ + "/loadstore_u1_seqL.s" +
                        " --sweep-alignment --align-max 256 --align-step 64 "
                        "--array-bytes 8192 --inner 1 --outer 2");
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_NE(r.output.find("offset0"), std::string::npos);
  EXPECT_EQ(std::count(r.output.begin(), r.output.end(), '\n'), 5);
}

TEST_F(ToolsTest, LauncherCsvToFile) {
  ASSERT_EQ(run(std::string(MT_MICROCREATOR_PATH) + " " + xmlPath_ +
                " --output " + outDir_)
                .exitCode,
            0);
  std::string csvPath = ::testing::TempDir() + "/tools_test.csv";
  CommandResult r = run(std::string(MT_MICROLAUNCHER_PATH) + " --input " +
                        outDir_ + "/loadstore_u1_seqL.s" +
                        " --array-bytes 8192 --csv " + csvPath);
  EXPECT_EQ(r.exitCode, 0);
  std::ifstream in(csvPath);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("cycles_per_iteration_min"), std::string::npos);
  std::remove(csvPath.c_str());
}

TEST_F(ToolsTest, LauncherCampaignMode) {
  ASSERT_EQ(run(std::string(MT_MICROCREATOR_PATH) + " " + xmlPath_ +
                " --output " + outDir_)
                .exitCode,
            0);
  CommandResult r = run(std::string(MT_MICROLAUNCHER_PATH) + " --campaign " +
                        outDir_ + " --jobs 2 --array-bytes 8192 --inner 1 "
                        "--outer 2 --max-repetitions 6");
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_NE(r.output.find("sequence,round,variant,status"), std::string::npos)
      << r.output;
  // One row per generated variant (30) plus the header.
  EXPECT_EQ(std::count(r.output.begin(), r.output.end(), '\n'), 31)
      << r.output;
  // The overhead clamp guarantees no negative cycles/iteration anywhere.
  EXPECT_EQ(r.output.find(",-"), std::string::npos) << r.output;
}

TEST_F(ToolsTest, LauncherCampaignRejectsMissingDirectory) {
  CommandResult r = run(std::string(MT_MICROLAUNCHER_PATH) +
                        " --campaign /nonexistent_campaign_dir");
  EXPECT_EQ(r.exitCode, 1);
  EXPECT_NE(r.output.find("campaign directory not found"), std::string::npos);
}

TEST_F(ToolsTest, LauncherStandaloneProgram) {
  CommandResult r = run(std::string(MT_MICROLAUNCHER_PATH) +
                        " --standalone 'true' --cores 2");
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_NE(r.output.find("processes,2"), std::string::npos);
  EXPECT_NE(r.output.find("failures,0"), std::string::npos);
}

TEST_F(ToolsTest, LauncherRejectsUnknownBackend) {
  CommandResult r = run(std::string(MT_MICROLAUNCHER_PATH) +
                        " --input x.s --backend gpu");
  EXPECT_EQ(r.exitCode, 1);
  EXPECT_NE(r.output.find("--backend must be sim or native"),
            std::string::npos);
}

TEST_F(ToolsTest, LauncherCampaignResumeSkipsCompletedRows) {
  ASSERT_EQ(run(std::string(MT_MICROCREATOR_PATH) + " " + xmlPath_ +
                " --output " + outDir_)
                .exitCode,
            0);
  std::string csvPath = ::testing::TempDir() + "/tools_resume.csv";
  std::remove(csvPath.c_str());
  std::string command = std::string(MT_MICROLAUNCHER_PATH) + " --campaign " +
                        outDir_ + " --jobs 2 --array-bytes 8192 --inner 1 "
                        "--outer 2 --max-repetitions 6 --csv " + csvPath;

  CommandResult first = run(command);
  EXPECT_EQ(first.exitCode, 0) << first.output;
  EXPECT_NE(first.output.find("0 skipped (resumed or failed verification)"),
            std::string::npos)
      << first.output;
  auto countLines = [&] {
    std::ifstream in(csvPath);
    std::string line;
    int n = 0;
    while (std::getline(in, line)) {
      if (!line.empty() && line[0] != '#') ++n;  // skip the env preamble
    }
    return n;
  };
  int linesAfterFirst = countLines();
  EXPECT_EQ(linesAfterFirst, 31);  // header + 30 variants

  // The restart must skip everything and leave the CSV untouched.
  CommandResult second = run(command);
  EXPECT_EQ(second.exitCode, 0) << second.output;
  EXPECT_NE(second.output.find("30 skipped (resumed or failed verification)"),
            std::string::npos)
      << second.output;
  EXPECT_EQ(countLines(), linesAfterFirst);
  std::remove(csvPath.c_str());
}

TEST_F(ToolsTest, ExploreSecondRunIsFullyCached) {
  std::string small =
      writeTempXml(testing::figure6Xml(1, 2, false), "tools_explore.xml");
  std::string cacheDir = ::testing::TempDir() + "/tools_explore_cache";
  std::filesystem::remove_all(cacheDir);
  std::string command = std::string(MT_MICROTOOLS_PATH) + " explore " +
                        small + " --array-bytes 16384 --inner 1 --outer 3 "
                        "--max-repetitions 6 --top 5 --cache " + cacheDir;

  CommandResult first = run(command);
  EXPECT_EQ(first.exitCode, 0) << first.output;
  EXPECT_NE(first.output.find("0 cache hit(s), 2 measured"),
            std::string::npos)
      << first.output;
  EXPECT_NE(first.output.find("rank,variant,cycles_per_iteration_min"),
            std::string::npos)
      << first.output;

  CommandResult second = run(command);
  EXPECT_EQ(second.exitCode, 0) << second.output;
  EXPECT_NE(second.output.find("2 cache hit(s), 0 measured"),
            std::string::npos)
      << second.output;
  std::filesystem::remove_all(cacheDir);
}

TEST_F(ToolsTest, ExploreStreamWithParallelGenerationMatchesBatch) {
  std::string small =
      writeTempXml(testing::figure6Xml(1, 2, false), "tools_stream.xml");
  std::string cacheDir = ::testing::TempDir() + "/tools_stream_cache";
  std::filesystem::remove_all(cacheDir);
  std::string command = std::string(MT_MICROTOOLS_PATH) + " explore " +
                        small + " --stream --generate-jobs 4 "
                        "--array-bytes 16384 --inner 1 --outer 3 "
                        "--max-repetitions 6 --top 5 --cache " + cacheDir;

  CommandResult first = run(command);
  EXPECT_EQ(first.exitCode, 0) << first.output;
  EXPECT_NE(first.output.find("0 cache hit(s), 2 measured"),
            std::string::npos)
      << first.output;

  // The warm rerun is fully served by the in-memory cache index: the
  // telemetry line must report zero per-variant record file reads.
  CommandResult second = run(command);
  EXPECT_EQ(second.exitCode, 0) << second.output;
  EXPECT_NE(second.output.find("2 cache hit(s), 0 measured"),
            std::string::npos)
      << second.output;
  EXPECT_NE(second.output.find("2 hit(s), 0 miss(es), 0 corrupt, "
                               "0 record file read(s)"),
            std::string::npos)
      << second.output;
  std::filesystem::remove_all(cacheDir);
}

TEST_F(ToolsTest, ExploreStreamRejectsHalvingSearch) {
  std::string small =
      writeTempXml(testing::figure6Xml(1, 2, false), "tools_streamh.xml");
  CommandResult r = run(std::string(MT_MICROTOOLS_PATH) + " explore " +
                        small + " --stream --search halving --no-cache "
                        "--array-bytes 16384 --inner 1 --outer 3");
  EXPECT_EQ(r.exitCode, 1);
  EXPECT_NE(r.output.find("--stream requires the full sweep"),
            std::string::npos)
      << r.output;
}

TEST_F(ToolsTest, CreatorGenerateJobsKeepsNamesIdentical) {
  CommandResult serial = run(std::string(MT_MICROCREATOR_PATH) + " " +
                             xmlPath_ + " --names-only");
  CommandResult parallel = run(std::string(MT_MICROCREATOR_PATH) + " " +
                               xmlPath_ + " --names-only --generate-jobs 4");
  EXPECT_EQ(serial.exitCode, 0);
  EXPECT_EQ(parallel.exitCode, 0);
  EXPECT_EQ(parallel.output, serial.output);
}

TEST_F(ToolsTest, ExploreWritesCampaignCsvAndReportFile) {
  std::string small =
      writeTempXml(testing::figure6Xml(1, 2, false), "tools_explore2.xml");
  std::string csvPath = ::testing::TempDir() + "/tools_explore.csv";
  std::string reportPath = ::testing::TempDir() + "/tools_explore_report.csv";
  std::remove(csvPath.c_str());
  std::remove(reportPath.c_str());
  CommandResult r = run(std::string(MT_MICROTOOLS_PATH) + " explore " +
                        small + " --no-cache --array-bytes 16384 --inner 1 "
                        "--outer 3 --max-repetitions 6 --csv " + csvPath +
                        " --report " + reportPath);
  EXPECT_EQ(r.exitCode, 0) << r.output;
  std::ifstream csvIn(csvPath);
  ASSERT_TRUE(csvIn.good());
  std::string csvText((std::istreambuf_iterator<char>(csvIn)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(csvText.find("sequence,round,variant,status"), std::string::npos);
  // The static-prediction columns ride along on every campaign CSV.
  EXPECT_NE(csvText.find("pred_cpi_lo,pred_bound,pred_err"),
            std::string::npos)
      << csvText;
  std::ifstream reportIn(reportPath);
  ASSERT_TRUE(reportIn.good());
  std::string reportText((std::istreambuf_iterator<char>(reportIn)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(reportText.find("rank,variant"), std::string::npos);
  std::remove(csvPath.c_str());
  std::remove(reportPath.c_str());
}

TEST_F(ToolsTest, ServeDaemonShardsExploreWorkerOverUnixSocket) {
  std::string small =
      writeTempXml(testing::figure6Xml(1, 2, false), "tools_serve.xml");
  std::string dir = ::testing::TempDir() + "/tools_serve_" +
                    std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  std::string addr = "unix:" + dir + "/serve.sock";

  // One shell script drives the whole lifecycle: daemon up, wait for the
  // ready line, one --connect worker, SIGTERM, drained summary.
  std::ostringstream script;
  script << "set -e\n"
         << "'" << MT_MICROTOOLS_PATH << "' serve --listen '" << addr
         << "' --cache '" << dir << "/cache' --csv '" << dir
         << "/campaign.csv' --report '" << dir << "/report.csv' > '" << dir
         << "/serve.log' 2>&1 &\n"
         << "pid=$!\n"
         << "for i in $(seq 1 100); do\n"
         << "  grep -q 'serve: listening on' '" << dir
         << "/serve.log' && break\n"
         << "  sleep 0.1\n"
         << "done\n"
         << "'" << MT_MICROTOOLS_PATH << "' explore '" << small
         << "' --connect '" << addr << "' --worker-name smoke "
         << "--array-bytes 16384 --inner 1 --outer 3 --max-repetitions 6\n"
         << "kill -TERM \"$pid\"\n"
         << "wait \"$pid\"\n"
         << "cat '" << dir << "/serve.log'\n";
  std::string scriptPath = dir + "/smoke.sh";
  std::ofstream(scriptPath) << script.str();

  CommandResult r = run("sh '" + scriptPath + "'");
  EXPECT_EQ(r.exitCode, 0) << r.output;
  // The worker's summary names the daemon instead of a local cache...
  EXPECT_NE(r.output.find("service: " + addr), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("2 lease(s) measured"), std::string::npos)
      << r.output;
  // ...and the daemon drained cleanly with per-worker telemetry.
  EXPECT_NE(r.output.find("serve: drained; 1 campaign(s) finalized"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("serve: worker smoke:"), std::string::npos)
      << r.output;
  std::ifstream report(dir + "/report.csv");
  ASSERT_TRUE(report.good()) << "daemon wrote no ranked report";
  std::string reportText((std::istreambuf_iterator<char>(report)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(reportText.find("rank,variant"), std::string::npos) << reportText;
  std::filesystem::remove_all(dir);
}

TEST_F(ToolsTest, MicrotoolsUsageAndUnknownSubcommand) {
  CommandResult bare = run(std::string(MT_MICROTOOLS_PATH));
  EXPECT_EQ(bare.exitCode, 2);
  EXPECT_NE(bare.output.find("usage: microtools"), std::string::npos);

  CommandResult help = run(std::string(MT_MICROTOOLS_PATH) + " help");
  EXPECT_EQ(help.exitCode, 0);
  EXPECT_NE(help.output.find("explore"), std::string::npos);

  CommandResult unknown = run(std::string(MT_MICROTOOLS_PATH) + " frobnicate");
  EXPECT_EQ(unknown.exitCode, 2);
  EXPECT_NE(unknown.output.find("unknown subcommand"), std::string::npos);

  CommandResult explore =
      run(std::string(MT_MICROTOOLS_PATH) + " explore --help");
  EXPECT_EQ(explore.exitCode, 0);
  EXPECT_NE(explore.output.find("--no-cache"), std::string::npos);
}

TEST_F(ToolsTest, LintVerifiesEveryGeneratedVariantCleanly) {
  // The CI smoke check: every variant MicroCreator generates from the
  // bundled example must lint with zero error-level diagnostics.
  CommandResult r =
      run(std::string(MT_MICROTOOLS_PATH) + " lint " + xmlPath_);
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_NE(r.output.find("lint: 30 unit(s), 0 error(s)"), std::string::npos)
      << r.output;
}

TEST_F(ToolsTest, LintFlagsBadAssemblyWithRuleIdAndExitCode) {
  std::string bad = writeTempXml(
      "microkernel:\n"
      "  mov $7, %rbx\n"
      "  mov $5, %eax\n"
      "  ret\n",
      "tools_lint_bad.s");
  CommandResult r = run(std::string(MT_MICROTOOLS_PATH) + " lint " + bad);
  EXPECT_EQ(r.exitCode, 1) << r.output;
  EXPECT_NE(r.output.find("MT-ABI01"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("error"), std::string::npos) << r.output;

  CommandResult json =
      run(std::string(MT_MICROTOOLS_PATH) + " lint --json " + bad);
  EXPECT_EQ(json.exitCode, 1) << json.output;
  EXPECT_NE(json.output.find("\"rule\":\"MT-ABI01\""), std::string::npos)
      << json.output;
  EXPECT_NE(json.output.find("\"severity\":\"error\""), std::string::npos)
      << json.output;
  // Located errors carry the documented column field (the mnemonic starts
  // after two leading spaces).
  EXPECT_NE(json.output.find("\"column\":3"), std::string::npos)
      << json.output;
}

TEST_F(ToolsTest, LintRequiresAnInput) {
  CommandResult r = run(std::string(MT_MICROTOOLS_PATH) + " lint");
  EXPECT_EQ(r.exitCode, 2);
  EXPECT_NE(r.output.find("no input"), std::string::npos);
}

// ---------------------------------------------------------------------------
// analyze
// ---------------------------------------------------------------------------

TEST_F(ToolsTest, AnalyzeReportsABoundForEveryGeneratedVariant) {
  CommandResult r = run(std::string(MT_MICROTOOLS_PATH) + " analyze " +
                        xmlPath_ + " --array-bytes 8192");
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_NE(r.output.find("pred_cpi"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("analyze: 30 unit(s), 0 without a valid bound"),
            std::string::npos)
      << r.output;
}

TEST_F(ToolsTest, AnalyzeJsonEmitsTheDocumentedSchema) {
  std::string small =
      writeTempXml(testing::figure6Xml(1, 2, false), "tools_analyze.xml");
  CommandResult r = run(std::string(MT_MICROTOOLS_PATH) + " analyze --json " +
                        small + " --array-bytes 8192");
  EXPECT_EQ(r.exitCode, 0) << r.output;
  // One JSON object per line, one line per generated variant.
  EXPECT_EQ(std::count(r.output.begin(), r.output.end(), '\n'), 2)
      << r.output;
  for (const char* key :
       {"\"source\":", "\"pred_cpi_lo\":", "\"bound\":", "\"frontend_bound\":",
        "\"throughput_bound\":", "\"latency_bound\":", "\"load_carried\":",
        "\"ports\":", "\"occupancy\":", "\"stability\":", "\"regular_loop\":",
        "\"fits_l1\":", "\"steady_dependences\":", "\"score\":",
        "\"warnings\":"}) {
    EXPECT_NE(r.output.find(key), std::string::npos) << key << "\n" << r.output;
  }
  // One 8 KiB array against a 32 KiB L1, a regular streaming loop: the
  // stability verdict must come back provably stable.
  EXPECT_NE(r.output.find("\"stable\":true"), std::string::npos) << r.output;
}

TEST_F(ToolsTest, AnalyzeUnboundableUnitWarnsAndExitsOne) {
  std::string straight = writeTempXml(
      "microkernel:\n xor %eax, %eax\n ret\n", "tools_analyze_flat.s");
  CommandResult r =
      run(std::string(MT_MICROTOOLS_PATH) + " analyze " + straight);
  EXPECT_EQ(r.exitCode, 1) << r.output;
  EXPECT_NE(r.output.find("no recognized single-block loop"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("1 without a valid bound"), std::string::npos)
      << r.output;
}

TEST_F(ToolsTest, AnalyzeRequiresAnInput) {
  CommandResult r = run(std::string(MT_MICROTOOLS_PATH) + " analyze");
  EXPECT_EQ(r.exitCode, 2);
  EXPECT_NE(r.output.find("no input"), std::string::npos);
}

// ---------------------------------------------------------------------------
// bench-diff
// ---------------------------------------------------------------------------

/// Writes a minimal campaign CSV: one ok row per (name, median) pair, all
/// with the given per-row cv, preceded by optional "# env.*" comment lines.
std::string writeCampaignCsv(
    const char* fileName,
    const std::vector<std::pair<std::string, double>>& rows, double cv = 0.001,
    const std::string& preamble = "") {
  std::ostringstream csv;
  csv << preamble;
  csv << "sequence,variant,status,cycles_per_iteration_median,cv\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    csv << i << "," << rows[i].first << ",ok," << rows[i].second << "," << cv
        << "\n";
  }
  return writeTempXml(csv.str(), fileName);
}

TEST_F(ToolsTest, BenchDiffSelfCompareExitsZero) {
  std::string a = writeCampaignCsv("bd_self.csv",
                                   {{"alpha", 2.0}, {"beta", 4.0}});
  CommandResult r = run(std::string(MT_MICROTOOLS_PATH) + " bench-diff " + a +
                        " " + a);
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_NE(r.output.find("2 compared, 0 regression(s), 0 improvement(s)"),
            std::string::npos)
      << r.output;
}

TEST_F(ToolsTest, BenchDiffFlagsRegressionWithNonzeroExit) {
  std::string oldCsv = writeCampaignCsv("bd_reg_old.csv", {{"alpha", 2.0}});
  std::string newCsv = writeCampaignCsv("bd_reg_new.csv", {{"alpha", 2.5}});
  CommandResult r = run(std::string(MT_MICROTOOLS_PATH) + " bench-diff " +
                        oldCsv + " " + newCsv);
  EXPECT_EQ(r.exitCode, 1) << r.output;
  EXPECT_NE(r.output.find("regression"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("1 regression(s)"), std::string::npos) << r.output;
}

TEST_F(ToolsTest, BenchDiffImprovementExitsZero) {
  std::string oldCsv = writeCampaignCsv("bd_imp_old.csv", {{"alpha", 2.5}});
  std::string newCsv = writeCampaignCsv("bd_imp_new.csv", {{"alpha", 2.0}});
  CommandResult r = run(std::string(MT_MICROTOOLS_PATH) + " bench-diff " +
                        oldCsv + " " + newCsv);
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_NE(r.output.find("improved"), std::string::npos) << r.output;
}

TEST_F(ToolsTest, BenchDiffToleratesDeltaInsideMeasurementNoise) {
  // +8% exceeds the 5% base threshold, but both runs carry a 5% per-row CV:
  // allowed = max(0.05, 3 * sqrt(0.05^2 + 0.05^2)) ~ 21%, so the delta is
  // noise, not a regression.
  std::string oldCsv =
      writeCampaignCsv("bd_noise_old.csv", {{"alpha", 2.0}}, 0.05);
  std::string newCsv =
      writeCampaignCsv("bd_noise_new.csv", {{"alpha", 2.16}}, 0.05);
  CommandResult r = run(std::string(MT_MICROTOOLS_PATH) + " bench-diff " +
                        oldCsv + " " + newCsv);
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_NE(r.output.find("0 regression(s)"), std::string::npos) << r.output;

  // The same delta with quiet data IS a regression.
  std::string quietOld =
      writeCampaignCsv("bd_quiet_old.csv", {{"alpha", 2.0}}, 0.001);
  std::string quietNew =
      writeCampaignCsv("bd_quiet_new.csv", {{"alpha", 2.16}}, 0.001);
  CommandResult quiet = run(std::string(MT_MICROTOOLS_PATH) + " bench-diff " +
                            quietOld + " " + quietNew);
  EXPECT_EQ(quiet.exitCode, 1) << quiet.output;
}

TEST_F(ToolsTest, BenchDiffReportsDisjointVariantsAndEnvDrift) {
  std::string oldCsv = writeCampaignCsv(
      "bd_disj_old.csv", {{"alpha", 2.0}, {"gone", 3.0}}, 0.001,
      "# env.scaling_governor=performance\n");
  std::string newCsv = writeCampaignCsv(
      "bd_disj_new.csv", {{"alpha", 2.0}, {"added", 5.0}}, 0.001,
      "# env.scaling_governor=powersave\n");
  CommandResult r = run(std::string(MT_MICROTOOLS_PATH) + " bench-diff " +
                        oldCsv + " " + newCsv);
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_NE(r.output.find("only in old: gone"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("only in new: added"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find(
                "env changed: scaling_governor: performance -> powersave"),
            std::string::npos)
      << r.output;
}

TEST_F(ToolsTest, BenchDiffJsonReport) {
  std::string oldCsv = writeCampaignCsv("bd_json_old.csv", {{"alpha", 2.0}});
  std::string newCsv = writeCampaignCsv("bd_json_new.csv", {{"alpha", 2.5}});
  CommandResult r = run(std::string(MT_MICROTOOLS_PATH) + " bench-diff --json "
                        + oldCsv + " " + newCsv);
  EXPECT_EQ(r.exitCode, 1) << r.output;
  EXPECT_NE(r.output.find("\"metric\": \"cycles_per_iteration_median\""),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"variant\": \"alpha\""), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"verdict\": \"regression\""), std::string::npos)
      << r.output;
}

TEST_F(ToolsTest, BenchDiffUsageAndBadInputExitTwo) {
  CommandResult one = run(std::string(MT_MICROTOOLS_PATH) + " bench-diff " +
                          "/nonexistent-a.csv");
  EXPECT_EQ(one.exitCode, 2);
  EXPECT_NE(one.output.find("exactly two CSV files"), std::string::npos)
      << one.output;

  std::string a = writeCampaignCsv("bd_usage.csv", {{"alpha", 2.0}});
  CommandResult missing = run(std::string(MT_MICROTOOLS_PATH) +
                              " bench-diff " + a + " /nonexistent-b.csv");
  EXPECT_EQ(missing.exitCode, 2);
  EXPECT_NE(missing.output.find("cannot read"), std::string::npos)
      << missing.output;

  // Two valid files with no variant in common cannot be compared.
  std::string b = writeCampaignCsv("bd_other.csv", {{"omega", 9.0}});
  CommandResult disjoint =
      run(std::string(MT_MICROTOOLS_PATH) + " bench-diff " + a + " " + b);
  EXPECT_EQ(disjoint.exitCode, 2);
  EXPECT_NE(disjoint.output.find("share no variant"), std::string::npos)
      << disjoint.output;
}

TEST_F(ToolsTest, BenchDiffCustomMetricAndThreshold) {
  std::ostringstream csvOld, csvNew;
  csvOld << "sequence,variant,status,ipc\n0,alpha,ok,2.0\n";
  csvNew << "sequence,variant,status,ipc\n0,alpha,ok,2.2\n";
  std::string a = writeTempXml(csvOld.str(), "bd_metric_old.csv");
  std::string b = writeTempXml(csvNew.str(), "bd_metric_new.csv");
  // ipc has no cv column; with --threshold 0.02 a +10% shift is flagged.
  CommandResult r = run(std::string(MT_MICROTOOLS_PATH) +
                        " bench-diff --metric ipc --threshold 0.02 " + a +
                        " " + b);
  EXPECT_EQ(r.exitCode, 1) << r.output;
  EXPECT_NE(r.output.find("bench-diff (ipc):"), std::string::npos)
      << r.output;
}

TEST_F(ToolsTest, HelpPagesWork) {
  CommandResult creator = run(std::string(MT_MICROCREATOR_PATH) + " --help");
  EXPECT_EQ(creator.exitCode, 0);
  EXPECT_NE(creator.output.find("--list-passes"), std::string::npos);
  CommandResult launcher =
      run(std::string(MT_MICROLAUNCHER_PATH) + " --help");
  EXPECT_EQ(launcher.exitCode, 0);
  EXPECT_NE(launcher.output.find("--nbvectors"), std::string::npos);
}

}  // namespace
}  // namespace microtools
