#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "support/cli.hpp"
#include "support/csv.hpp"
#include "support/envinfo.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/strings.hpp"

namespace microtools {
namespace {

// ---------------------------------------------------------------------------
// strings
// ---------------------------------------------------------------------------

TEST(Strings, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(strings::trim("  hello \t\n"), "hello");
  EXPECT_EQ(strings::trim("hello"), "hello");
  EXPECT_EQ(strings::trim(""), "");
  EXPECT_EQ(strings::trim(" \t "), "");
}

TEST(Strings, TrimKeepsInteriorWhitespace) {
  EXPECT_EQ(strings::trim("  a b  "), "a b");
}

TEST(Strings, SplitKeepsEmptyFields) {
  EXPECT_EQ(strings::split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(strings::split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(strings::split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Strings, SplitWhitespaceDropsEmptyFields) {
  EXPECT_EQ(strings::splitWhitespace("  a  \t b\nc "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(strings::splitWhitespace("   ").empty());
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(strings::startsWith("movaps", "mov"));
  EXPECT_FALSE(strings::startsWith("mov", "movaps"));
  EXPECT_TRUE(strings::endsWith("kernel.s", ".s"));
  EXPECT_FALSE(strings::endsWith(".s", "kernel.s"));
}

TEST(Strings, ToLower) {
  EXPECT_EQ(strings::toLower("MovAPS %XMM0"), "movaps %xmm0");
}

TEST(Strings, Join) {
  EXPECT_EQ(strings::join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(strings::join({}, ","), "");
  EXPECT_EQ(strings::join({"one"}, ","), "one");
}

TEST(Strings, ParseIntAcceptsDecimalAndHex) {
  EXPECT_EQ(strings::parseInt("42"), 42);
  EXPECT_EQ(strings::parseInt("-17"), -17);
  EXPECT_EQ(strings::parseInt("0x10"), 16);
  EXPECT_EQ(strings::parseInt("  8 "), 8);
}

TEST(Strings, ParseIntRejectsGarbage) {
  EXPECT_FALSE(strings::parseInt("12ab"));
  EXPECT_FALSE(strings::parseInt(""));
  EXPECT_FALSE(strings::parseInt("four"));
}

TEST(Strings, ParseDouble) {
  EXPECT_DOUBLE_EQ(*strings::parseDouble("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(*strings::parseDouble("-1e3"), -1000.0);
  EXPECT_FALSE(strings::parseDouble("2.5x"));
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(strings::replaceAll("aXbXc", "X", "--"), "a--b--c");
  EXPECT_EQ(strings::replaceAll("aaa", "a", "aa"), "aaaaaa");
  EXPECT_EQ(strings::replaceAll("abc", "", "x"), "abc");
}

TEST(Strings, Format) {
  EXPECT_EQ(strings::format("u%d_%s", 3, "seq"), "u3_seq");
  EXPECT_EQ(strings::format("%.2f", 1.5), "1.50");
}

// ---------------------------------------------------------------------------
// csv
// ---------------------------------------------------------------------------

TEST(Csv, WritesHeaderAndRows) {
  csv::Table table({"a", "b"});
  table.beginRow().add("x").add(1).commit();
  table.beginRow().add("y").add(2.5, 1).commit();
  EXPECT_EQ(table.toString(), "a,b\nx,1\ny,2.5\n");
}

TEST(Csv, QuotesSpecialFields) {
  EXPECT_EQ(csv::quoteField("plain"), "plain");
  EXPECT_EQ(csv::quoteField("a,b"), "\"a,b\"");
  EXPECT_EQ(csv::quoteField("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv::quoteField("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, RejectsWrongColumnCount) {
  csv::Table table({"a", "b"});
  EXPECT_THROW(table.addRow({"only-one"}), McError);
}

TEST(Csv, RejectsEmptyHeader) {
  EXPECT_THROW(csv::Table({}), McError);
}

TEST(Csv, RowAccess) {
  csv::Table table({"a"});
  table.addRow({"1"});
  table.addRow({"2"});
  EXPECT_EQ(table.rowCount(), 2u);
  EXPECT_EQ(table.row(1)[0], "2");
}

TEST(Csv, ParseLineSplitsPlainFields) {
  EXPECT_EQ(csv::parseLine("a,b,c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(csv::parseLine("a,,c"), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(csv::parseLine(""), (std::vector<std::string>{""}));
  EXPECT_EQ(csv::parseLine("a,"), (std::vector<std::string>{"a", ""}));
}

TEST(Csv, ParseLineHonorsQuoting) {
  EXPECT_EQ(csv::parseLine("\"a,b\",c"),
            (std::vector<std::string>{"a,b", "c"}));
  EXPECT_EQ(csv::parseLine("\"say \"\"hi\"\"\",x"),
            (std::vector<std::string>{"say \"hi\"", "x"}));
  EXPECT_EQ(csv::parseLine("\"\",y"), (std::vector<std::string>{"", "y"}));
}

TEST(Csv, ParseLineInvertsQuoteField) {
  std::vector<std::string> fields{"plain", "a,b", "say \"hi\"", ""};
  std::string line;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    line += (i ? "," : "") + csv::quoteField(fields[i]);
  }
  EXPECT_EQ(csv::parseLine(line), fields);
}

TEST(Csv, ParseLineToleratesTrailingCarriageReturn) {
  EXPECT_EQ(csv::parseLine("a,b\r"), (std::vector<std::string>{"a", "b"}));
}

// ---------------------------------------------------------------------------
// stats
// ---------------------------------------------------------------------------

TEST(Stats, AccumulatorBasics) {
  stats::Accumulator acc;
  for (double v : {2.0, 4.0, 6.0}) acc.add(v);
  EXPECT_EQ(acc.count(), 3u);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 6.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 4.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 4.0);
}

TEST(Stats, AccumulatorEmptyThrows) {
  stats::Accumulator acc;
  EXPECT_THROW(acc.min(), McError);
  EXPECT_THROW(acc.mean(), McError);
}

TEST(Stats, VarianceOfSingleSampleIsZero) {
  stats::Accumulator acc;
  acc.add(5.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.stddev(), 0.0);
}

TEST(Stats, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(stats::median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(stats::median({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(stats::median({7.0}), 7.0);
}

TEST(Stats, MedianEmptyThrows) {
  EXPECT_THROW(stats::median({}), McError);
}

TEST(Stats, SummarizeMatchesAccumulator) {
  std::vector<double> samples{1.0, 2.0, 3.0, 4.0};
  stats::Summary s = stats::summarize(samples);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
}

TEST(Stats, CvIsRelativeSpread) {
  stats::Summary s = stats::summarize({10.0, 10.0, 10.0});
  EXPECT_DOUBLE_EQ(s.cv, 0.0);
}

TEST(Stats, CvOfZeroMeanIsNanNotZero) {
  // stddev/mean is undefined for a zero mean; returning 0.0 here used to
  // make all-zero sample sets look "perfectly stable" to the adaptive loop.
  stats::Accumulator acc;
  for (int i = 0; i < 3; ++i) acc.add(0.0);
  EXPECT_TRUE(std::isnan(acc.cv()));

  stats::Accumulator mixed;  // mean 0 with nonzero spread
  mixed.add(-1.0);
  mixed.add(1.0);
  EXPECT_TRUE(std::isnan(mixed.cv()));

  // Nothing measured yet is just as undefined as a zero mean: 0.0 would
  // read as "perfectly converged" before a single sample arrived.
  stats::Accumulator empty;
  EXPECT_TRUE(std::isnan(empty.cv()));
}

TEST(Stats, NanLastLessIsATotalOrderWithNanAtTheEnd) {
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(stats::nanLastLess(1.0, 2.0));
  EXPECT_FALSE(stats::nanLastLess(2.0, 1.0));
  EXPECT_FALSE(stats::nanLastLess(1.0, 1.0));  // irreflexive

  // Every number sorts before NaN, never the other way around.
  EXPECT_TRUE(stats::nanLastLess(1.0, kNan));
  EXPECT_FALSE(stats::nanLastLess(kNan, 1.0));

  // NaNs are equivalent to each other — exactly the property the raw `<`
  // lacks (NaN < x and x < NaN are both false, so NaN is "equal" to
  // everything, breaking transitivity of equivalence in std::sort).
  EXPECT_FALSE(stats::nanLastLess(kNan, kNan));

  std::vector<double> values = {kNan, 3.0, kNan, 1.0, 2.0};
  std::sort(values.begin(), values.end(),
            [](double a, double b) { return stats::nanLastLess(a, b); });
  EXPECT_DOUBLE_EQ(values[0], 1.0);
  EXPECT_DOUBLE_EQ(values[1], 2.0);
  EXPECT_DOUBLE_EQ(values[2], 3.0);
  EXPECT_TRUE(std::isnan(values[3]));
  EXPECT_TRUE(std::isnan(values[4]));
}

TEST(Stats, WithinNoiseComparesAgainstCombinedStandardError) {
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  // 10.0 vs 10.2 at 5% CV each: sigma = 0.5 / 0.51, combined ~0.714 —
  // a 0.2 gap is well inside 3 sigma.
  EXPECT_TRUE(stats::withinNoise(10.0, 0.05, 10.2, 0.05, 3.0));
  // 10.0 vs 30.0 is ~9.4 combined sigmas apart: clearly distinguishable.
  EXPECT_FALSE(stats::withinNoise(10.0, 0.05, 30.0, 0.05, 3.0));
  // Zero CV means zero noise: only exact equality is "within noise".
  EXPECT_TRUE(stats::withinNoise(5.0, 0.0, 5.0, 0.0, 3.0));
  EXPECT_FALSE(stats::withinNoise(5.0, 0.0, 5.0001, 0.0, 3.0));
  // Any undefined input makes the comparison undecidable: report "within
  // noise" so callers never act (eliminate a variant) on a NaN.
  EXPECT_TRUE(stats::withinNoise(kNan, 0.0, 5.0, 0.0, 3.0));
  EXPECT_TRUE(stats::withinNoise(5.0, kNan, 6.0, 0.0, 3.0));
  EXPECT_TRUE(stats::withinNoise(5.0, 0.0, kNan, 0.0, 3.0));
  EXPECT_TRUE(stats::withinNoise(5.0, 0.0, 6.0, kNan, 3.0));
}

// ---------------------------------------------------------------------------
// hash
// ---------------------------------------------------------------------------

TEST(Hash, EmptyDigestIsOffsetBasis) {
  EXPECT_EQ(hash::Fnv1a().value(), hash::Fnv1a::kOffsetBasis);
  EXPECT_EQ(hash::Fnv1a().value(), 0xcbf29ce484222325ull);
}

TEST(Hash, MatchesKnownFnv1aVectors) {
  // Reference digests of the 64-bit FNV-1a test vectors.
  EXPECT_EQ(hash::fnv1a("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(hash::fnv1a("foobar"), 0x85944171f73967e8ull);
}

TEST(Hash, DeterministicAndOrderSensitive) {
  auto digest = [](auto&& fill) {
    hash::Fnv1a h;
    fill(h);
    return h.value();
  };
  std::uint64_t a =
      digest([](hash::Fnv1a& h) { h.str("x").u64(1).boolean(true); });
  std::uint64_t b =
      digest([](hash::Fnv1a& h) { h.str("x").u64(1).boolean(true); });
  std::uint64_t c =
      digest([](hash::Fnv1a& h) { h.u64(1).str("x").boolean(true); });
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Hash, StringMixerSeparatesAdjacentFields) {
  // Without the length prefix these two would concatenate identically.
  std::uint64_t ab_c = hash::Fnv1a().str("ab").str("c").value();
  std::uint64_t a_bc = hash::Fnv1a().str("a").str("bc").value();
  EXPECT_NE(ab_c, a_bc);
}

TEST(Hash, DoubleMixerNormalizesNegativeZero) {
  EXPECT_EQ(hash::Fnv1a().f64(-0.0).value(), hash::Fnv1a().f64(0.0).value());
  EXPECT_NE(hash::Fnv1a().f64(1.0).value(), hash::Fnv1a().f64(2.0).value());
}

TEST(Hash, HexIsSixteenLowercaseDigits) {
  std::string hex = hash::Fnv1a().str("sample").hex();
  EXPECT_EQ(hex.size(), 16u);
  for (char c : hex) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << c;
  }
  EXPECT_EQ(hash::toHex(0), "0000000000000000");
  EXPECT_EQ(hash::toHex(0xdeadbeefull), "00000000deadbeef");
}

// ---------------------------------------------------------------------------
// rng
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next()) ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowStaysInBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.nextBelow(13), 13u);
}

TEST(Rng, NextBelowZeroThrows) {
  Rng rng;
  EXPECT_THROW(rng.nextBelow(0), McError);
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng(3);
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 2000; ++i) {
    std::int64_t v = rng.nextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    sawLo |= (v == -2);
    sawHi |= (v == 2);
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, NextInRangeBadBoundsThrow) {
  Rng rng;
  EXPECT_THROW(rng.nextInRange(3, 2), McError);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.nextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

// ---------------------------------------------------------------------------
// cli
// ---------------------------------------------------------------------------

TEST(Cli, ParsesStringIntDoubleFlag) {
  cli::Parser p("t");
  p.addString("name", "n").addInt("count", "c").addDouble("ratio", "r");
  p.addFlag("fast", "f");
  ASSERT_TRUE(p.parse({"--name", "x", "--count=3", "--ratio", "2.5",
                       "--fast"}));
  EXPECT_EQ(p.getString("name"), "x");
  EXPECT_EQ(p.getInt("count"), 3);
  EXPECT_DOUBLE_EQ(p.getDouble("ratio"), 2.5);
  EXPECT_TRUE(p.getFlag("fast"));
}

TEST(Cli, DefaultsApply) {
  cli::Parser p("t");
  p.addInt("count", "c", 7);
  ASSERT_TRUE(p.parse(std::vector<std::string>{}));
  EXPECT_EQ(p.getInt("count"), 7);
  EXPECT_TRUE(p.has("count"));
}

TEST(Cli, MissingRequiredThrowsOnAccess) {
  cli::Parser p("t");
  p.addString("name", "n");
  ASSERT_TRUE(p.parse(std::vector<std::string>{}));
  EXPECT_FALSE(p.has("name"));
  EXPECT_THROW(p.getString("name"), McError);
}

TEST(Cli, UnknownOptionThrows) {
  cli::Parser p("t");
  EXPECT_THROW(p.parse({"--nope"}), ParseError);
}

TEST(Cli, IntValidation) {
  cli::Parser p("t");
  p.addInt("count", "c");
  EXPECT_THROW(p.parse({"--count", "abc"}), ParseError);
}

TEST(Cli, MissingValueThrows) {
  cli::Parser p("t");
  p.addString("name", "n");
  EXPECT_THROW(p.parse({"--name"}), ParseError);
}

TEST(Cli, RepeatedCollectsAll) {
  cli::Parser p("t");
  p.addRepeated("plugin", "p");
  ASSERT_TRUE(p.parse({"--plugin", "a.so", "--plugin=b.so"}));
  EXPECT_EQ(p.getRepeated("plugin"),
            (std::vector<std::string>{"a.so", "b.so"}));
}

TEST(Cli, PositionalArguments) {
  cli::Parser p("t");
  p.addFlag("v", "verbose");
  ASSERT_TRUE(p.parse({"input.xml", "--v", "more"}));
  EXPECT_EQ(p.positional(), (std::vector<std::string>{"input.xml", "more"}));
}

TEST(Cli, FlagRejectsValue) {
  cli::Parser p("t");
  p.addFlag("fast", "f");
  EXPECT_THROW(p.parse({"--fast=yes"}), ParseError);
}

TEST(Cli, DuplicateRegistrationThrows) {
  cli::Parser p("t");
  p.addInt("n", "x");
  EXPECT_THROW(p.addString("n", "y"), McError);
}

TEST(Cli, WrongTypeAccessThrows) {
  cli::Parser p("t");
  p.addInt("n", "x", 1);
  ASSERT_TRUE(p.parse(std::vector<std::string>{}));
  EXPECT_THROW(p.getString("n"), McError);
}

TEST(Cli, HelpTextMentionsOptionsAndDefaults) {
  cli::Parser p("mytool", "Does things.");
  p.addInt("count", "How many", 5);
  std::string help = p.helpText();
  EXPECT_NE(help.find("mytool"), std::string::npos);
  EXPECT_NE(help.find("--count"), std::string::npos);
  EXPECT_NE(help.find("default: 5"), std::string::npos);
}

// ---------------------------------------------------------------------------
// errors
// ---------------------------------------------------------------------------

TEST(Error, ParseErrorCarriesLine) {
  ParseError e("bad token", 12);
  EXPECT_EQ(e.line(), 12u);
  EXPECT_NE(std::string(e.what()).find("line 12"), std::string::npos);
}

TEST(EnvInfo, CaptureHasStableShape) {
  env::EnvSnapshot snapshot = env::captureEnv();
  // Every snapshot carries the same keys — missing sources degrade to
  // "unknown", they are never omitted.
  for (const char* key : {"cpu_model", "cpu_count", "governor", "turbo",
                          "loadavg", "kernel", "hostname"}) {
    EXPECT_FALSE(snapshot.get(key).empty()) << key;
  }
  EXPECT_NE(snapshot.get("cpu_count"), "unknown");
}

TEST(EnvInfo, SetReplacesAndStripsNewlines) {
  env::EnvSnapshot snapshot;
  snapshot.set("compiler", "gcc\n12.3");
  EXPECT_EQ(snapshot.get("compiler"), "gcc 12.3");
  snapshot.set("compiler", "clang 17");
  EXPECT_EQ(snapshot.get("compiler"), "clang 17");
  EXPECT_EQ(snapshot.fields.size(), 1u);
  EXPECT_EQ(snapshot.get("absent"), "");
}

TEST(EnvInfo, CsvCommentsRoundTrip) {
  env::EnvSnapshot snapshot;
  snapshot.set("cpu_model", "Test CPU @ 2.0GHz");
  snapshot.set("scaling_governor", "performance");
  std::string comments = env::toCsvComments(snapshot);
  EXPECT_NE(comments.find("# env.cpu_model=Test CPU @ 2.0GHz\n"),
            std::string::npos);

  // Round-trips when embedded in a full CSV, with non-env lines ignored.
  std::string csvText = comments +
                        "sequence,variant,status\n"
                        "0,alpha,ok\n"
                        "# a stray comment that is not an env line\n";
  env::EnvSnapshot parsed = env::fromCsvComments(csvText);
  EXPECT_EQ(parsed.get("cpu_model"), "Test CPU @ 2.0GHz");
  EXPECT_EQ(parsed.get("scaling_governor"), "performance");
  EXPECT_EQ(parsed.fields.size(), 2u);
}

TEST(Error, CheckDescriptionThrowsWithMessage) {
  EXPECT_NO_THROW(checkDescription(true, "fine"));
  try {
    checkDescription(false, "broken invariant");
    FAIL() << "expected DescriptionError";
  } catch (const DescriptionError& e) {
    EXPECT_NE(std::string(e.what()).find("broken invariant"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace microtools
