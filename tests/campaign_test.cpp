// Tests of the variant-campaign runner: parallel dispatch over per-worker
// backends, adaptive repetition, retry/timeout handling, and the streaming
// append-safe CSV output.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "launcher/campaign.hpp"
#include "launcher/sim_backend.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"
#include "test_helpers.hpp"
#include "verify/verify.hpp"

namespace microtools::launcher {
namespace {

namespace fs = std::filesystem;

using testing::figure6Xml;
using testing::generate;

BackendFactory simFactory() {
  return [](int) {
    return std::make_unique<SimBackend>(sim::nehalemX5650DualSocket());
  };
}

KernelRequest smallRequest() {
  KernelRequest request;
  request.arrays.push_back(ArraySpec{16 * 1024, 4096, 0});
  request.n = 16 * 1024 / 4;
  return request;
}

CampaignOptions quickOptions(int jobs) {
  CampaignOptions options;
  options.jobs = jobs;
  options.protocol.innerRepetitions = 1;
  options.protocol.outerRepetitions = 3;
  options.maxCv = 0.05;
  options.maxRepetitions = 10;
  return options;
}

/// >= 8 distinct generated variants (one per unroll factor).
std::vector<CampaignVariant> eightVariants() {
  auto variants = variantsFromPrograms(generate(figure6Xml(1, 8, false)));
  EXPECT_GE(variants.size(), 8u);
  return variants;
}

/// 64 variants cycling the eight generated programs under unique names.
std::vector<CampaignVariant> sixtyFourVariants() {
  std::vector<CampaignVariant> base = eightVariants();
  std::vector<CampaignVariant> variants;
  for (int i = 0; i < 64; ++i) {
    CampaignVariant v = base[static_cast<std::size_t>(i) % base.size()];
    v.name = strings::format("variant_%02d_%s", i, v.name.c_str());
    variants.push_back(std::move(v));
  }
  return variants;
}

/// A backend that fails its first `failures` invocations with
/// ExecutionError, then behaves; used for the retry path.
class FlakyBackend final : public Backend {
 public:
  explicit FlakyBackend(int failures) : failuresLeft_(failures) {}

  struct FakeKernel final : KernelHandle {};

  std::string name() const override { return "flaky"; }
  std::unique_ptr<KernelHandle> load(const std::string&,
                                     const std::string&) override {
    return std::make_unique<FakeKernel>();
  }
  InvokeResult invoke(KernelHandle&, const KernelRequest&) override {
    if (failuresLeft_ > 0) {
      --failuresLeft_;
      throw ExecutionError("transient fake failure");
    }
    if (sleepMs_ > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(sleepMs_));
    }
    return InvokeResult{100.0, 10};
  }
  double timerOverheadCycles() const override { return 0.0; }
  std::vector<InvokeResult> invokeFork(KernelHandle&, const KernelRequest&,
                                       int, int, PinPolicy) override {
    throw ExecutionError("no fork mode");
  }
  InvokeResult invokeOpenMp(KernelHandle&, const KernelRequest&, int,
                            int) override {
    throw ExecutionError("no OpenMP mode");
  }

  void setSleepMs(int ms) { sleepMs_ = ms; }

 private:
  int failuresLeft_;
  int sleepMs_ = 0;
};

// ---------------------------------------------------------------------------
// Determinism & speedup (the acceptance bar)
// ---------------------------------------------------------------------------

TEST(Campaign, SixtyFourVariantsBitIdenticalAcrossJobCounts) {
  std::vector<CampaignVariant> variants = sixtyFourVariants();
  ASSERT_EQ(variants.size(), 64u);
  KernelRequest request = smallRequest();

  auto runWithJobs = [&](int jobs, double* wallSeconds) {
    CampaignRunner runner(simFactory(), quickOptions(jobs));
    auto t0 = std::chrono::steady_clock::now();
    std::vector<VariantResult> results = runner.run(variants, request);
    auto t1 = std::chrono::steady_clock::now();
    *wallSeconds = std::chrono::duration<double>(t1 - t0).count();
    return results;
  };

  double wall1 = 0.0, wall4 = 0.0;
  std::vector<VariantResult> serial = runWithJobs(1, &wall1);
  std::vector<VariantResult> parallel = runWithJobs(4, &wall4);

  ASSERT_EQ(serial.size(), 64u);
  ASSERT_EQ(parallel.size(), 64u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].status, "ok") << serial[i].error;
    // Bit-identical CSV rows regardless of job count.
    EXPECT_EQ(CampaignRunner::csvRow(serial[i]),
              CampaignRunner::csvRow(parallel[i]))
        << "variant " << i;
    EXPECT_GE(serial[i].repetitions, 3);
    EXPECT_GE(serial[i].finalCv, 0.0);
    EXPECT_GE(serial[i].measurement.cyclesPerIteration.min, 0.0);
  }

  // Loose wall-clock bound: 4 workers must beat 1 worker outright. Only
  // meaningful with enough hardware threads; the identity checks above are
  // the load-bearing part and run everywhere.
  if (std::thread::hardware_concurrency() >= 4) {
    EXPECT_LT(wall4, wall1) << "jobs=4 not faster (" << wall4 << "s vs "
                            << wall1 << "s)";
  }
}

TEST(Campaign, EightVariantsOnFourJobsMatchSerialRun) {
  std::vector<CampaignVariant> variants = eightVariants();
  KernelRequest request = smallRequest();
  CampaignRunner serial(simFactory(), quickOptions(1));
  CampaignRunner parallel(simFactory(), quickOptions(4));
  std::vector<VariantResult> a = serial.run(variants, request);
  std::vector<VariantResult> b = parallel.run(variants, request);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].sequence, i);
    EXPECT_EQ(CampaignRunner::csvRow(a[i]), CampaignRunner::csvRow(b[i]));
  }
}

// ---------------------------------------------------------------------------
// Adaptive bookkeeping in results
// ---------------------------------------------------------------------------

TEST(Campaign, RowsCarryCvAndRepetitionCount) {
  CampaignRunner runner(simFactory(), quickOptions(2));
  std::vector<VariantResult> results =
      runner.run(eightVariants(), smallRequest());
  csv::Table table = CampaignRunner::toCsv(results);
  const auto& header = table.header();
  auto column = [&](const std::string& name) {
    for (std::size_t i = 0; i < header.size(); ++i) {
      if (header[i] == name) return i;
    }
    ADD_FAILURE() << "missing column " << name;
    return std::size_t{0};
  };
  std::size_t cvCol = column("cv");
  std::size_t repCol = column("repetitions");
  for (std::size_t i = 0; i < table.rowCount(); ++i) {
    EXPECT_FALSE(table.row(i)[cvCol].empty());
    EXPECT_GE(std::stoi(table.row(i)[repCol]), 3);
    // No negative cycles/iteration can reach the CSV.
    for (const std::string& cell : table.row(i)) {
      EXPECT_TRUE(cell.empty() || cell[0] != '-') << cell;
    }
  }
}

// ---------------------------------------------------------------------------
// Failure handling
// ---------------------------------------------------------------------------

TEST(Campaign, RetriesOnceOnExecutionError) {
  // First invocation throws; the retry succeeds.
  CampaignRunner runner(
      [](int) { return std::make_unique<FlakyBackend>(1); }, quickOptions(1));
  std::vector<CampaignVariant> variants{{"flaky", "asm", "", "microkernel"}};
  std::vector<VariantResult> results = runner.run(variants, KernelRequest{});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, "ok");
  EXPECT_EQ(results[0].attempts, 2);
}

TEST(Campaign, PersistentFailureRecordedAfterRetry) {
  CampaignRunner runner(
      [](int) { return std::make_unique<FlakyBackend>(1000); },
      quickOptions(1));
  std::vector<CampaignVariant> variants{{"broken", "asm", "", "microkernel"}};
  std::vector<VariantResult> results = runner.run(variants, KernelRequest{});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, "error");
  EXPECT_EQ(results[0].attempts, 2);
  EXPECT_NE(results[0].error.find("transient fake failure"),
            std::string::npos);
}

TEST(Campaign, TimeoutMarksVariantWithoutRetry) {
  CampaignOptions options = quickOptions(1);
  options.variantTimeoutMs = 5;
  CampaignRunner runner(
      [](int) {
        auto backend = std::make_unique<FlakyBackend>(0);
        backend->setSleepMs(20);  // every invocation overshoots the budget
        return backend;
      },
      options);
  std::vector<CampaignVariant> variants{{"slow", "asm", "", "microkernel"}};
  std::vector<VariantResult> results = runner.run(variants, KernelRequest{});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, "timeout");
  EXPECT_EQ(results[0].attempts, 1);
}

TEST(Campaign, SimCannotLoadCKernels) {
  CampaignRunner runner(simFactory(), quickOptions(1));
  std::vector<CampaignVariant> variants{
      {"c_kernel", "c", "int microkernel(int n){return n;}", "microkernel"}};
  std::vector<VariantResult> results = runner.run(variants, smallRequest());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, "error");
  EXPECT_NE(results[0].error.find("cannot load"), std::string::npos);
}

TEST(Campaign, ValidatesConstruction) {
  EXPECT_THROW(CampaignRunner(nullptr, CampaignOptions{}), McError);
  CampaignOptions bad;
  bad.jobs = 0;
  EXPECT_THROW(CampaignRunner(simFactory(), bad), McError);
}

// ---------------------------------------------------------------------------
// Streaming CSV sink
// ---------------------------------------------------------------------------

TEST(Campaign, StreamsRowsToFileAppendSafely) {
  std::string path = ::testing::TempDir() + "/campaign_stream.csv";
  std::remove(path.c_str());
  std::vector<CampaignVariant> variants = eightVariants();
  {
    CampaignCsvSink sink(path);
    CampaignRunner runner(simFactory(), quickOptions(4));
    runner.run(variants, smallRequest(), &sink);
  }
  auto countLines = [&] {
    std::ifstream in(path);
    std::string line;
    int header = 0, rows = 0;
    while (std::getline(in, line)) {
      if (strings::startsWith(line, "sequence,")) {
        ++header;
      } else if (!line.empty()) {
        ++rows;
      }
    }
    return std::make_pair(header, rows);
  };
  auto [headers1, rows1] = countLines();
  EXPECT_EQ(headers1, 1);
  EXPECT_EQ(rows1, static_cast<int>(variants.size()));

  // Re-running appends rows without duplicating the header (crash-resume).
  {
    CampaignCsvSink sink(path);
    CampaignRunner runner(simFactory(), quickOptions(2));
    runner.run(variants, smallRequest(), &sink);
  }
  auto [headers2, rows2] = countLines();
  EXPECT_EQ(headers2, 1);
  EXPECT_EQ(rows2, 2 * static_cast<int>(variants.size()));
  std::remove(path.c_str());
}

TEST(Campaign, SinkRowsCoverEverySequence) {
  std::ostringstream oss;
  CampaignCsvSink sink(oss);
  CampaignRunner runner(simFactory(), quickOptions(4));
  std::vector<CampaignVariant> variants = eightVariants();
  runner.run(variants, smallRequest(), &sink);
  std::set<std::string> sequences;
  std::istringstream in(oss.str());
  std::string line;
  std::getline(in, line);  // header
  EXPECT_TRUE(strings::startsWith(line, "sequence,round,variant,status"));
  while (std::getline(in, line)) {
    if (!line.empty()) sequences.insert(strings::split(line, ',')[0]);
  }
  EXPECT_EQ(sequences.size(), variants.size());
}

// ---------------------------------------------------------------------------
// Variant sources
// ---------------------------------------------------------------------------

TEST(Campaign, DirectoryLoaderPicksUpKernelsSorted) {
  std::string dir = ::testing::TempDir() + "/campaign_dir_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  std::vector<CampaignVariant> programs = eightVariants();
  std::ofstream(dir + "/b_second.s") << programs[1].source;
  std::ofstream(dir + "/a_first.s") << programs[0].source;
  std::ofstream(dir + "/c_kernel.c") << "int microkernel(int n){return n;}";
  std::ofstream(dir + "/notes.txt") << "ignored";

  std::vector<CampaignVariant> variants = loadCampaignDirectory(dir, "mk");
  ASSERT_EQ(variants.size(), 3u);
  EXPECT_EQ(variants[0].name, "a_first");
  EXPECT_EQ(variants[0].kind, "asm");
  EXPECT_EQ(variants[1].name, "b_second");
  EXPECT_EQ(variants[2].name, "c_kernel");
  EXPECT_EQ(variants[2].kind, "c");
  for (const CampaignVariant& v : variants) {
    EXPECT_EQ(v.functionName, "mk");
    EXPECT_FALSE(v.source.empty());
  }
  fs::remove_all(dir);
}

TEST(Campaign, DirectoryLoaderRejectsMissingOrEmptyDirs) {
  EXPECT_THROW(loadCampaignDirectory("/nonexistent/campaign"), McError);
  std::string dir = ::testing::TempDir() + "/campaign_empty_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  EXPECT_THROW(loadCampaignDirectory(dir), McError);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// CSV resume
// ---------------------------------------------------------------------------

TEST(Campaign, ResumeSkipsVariantsAlreadyCompletedInCsv) {
  std::string path = ::testing::TempDir() + "/campaign_resume.csv";
  std::remove(path.c_str());
  std::vector<CampaignVariant> variants = eightVariants();

  {
    CampaignCsvSink sink(path);
    CampaignRunner runner(simFactory(), quickOptions(2));
    runner.run(variants, smallRequest(), &sink);
  }
  std::set<std::pair<std::size_t, std::string>> completed =
      readCompletedVariants(path);
  ASSERT_EQ(completed.size(), variants.size());

  // Restart against the same CSV: every variant must be skipped without
  // ever touching a backend — the factory fails the test if invoked.
  CampaignOptions resume = quickOptions(2);
  resume.completed = completed;
  CampaignRunner runner(
      [](int) -> std::unique_ptr<Backend> {
        ADD_FAILURE() << "backend built for a fully resumed campaign";
        return std::make_unique<FlakyBackend>(0);
      },
      resume);
  {
    CampaignCsvSink sink(path);
    std::vector<VariantResult> results =
        runner.run(variants, smallRequest(), &sink);
    ASSERT_EQ(results.size(), variants.size());
    for (const VariantResult& r : results) {
      EXPECT_EQ(r.status, "skipped");
      EXPECT_NE(r.note.find("already completed"), std::string::npos);
    }
  }

  // Skipped rows are not re-appended: the file keeps header + N rows.
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    if (!line.empty()) ++lines;
  }
  EXPECT_EQ(lines, 1 + static_cast<int>(variants.size()));
  std::remove(path.c_str());
}

TEST(Campaign, ResumeReRunsVariantsThatDidNotComplete) {
  std::vector<CampaignVariant> variants = eightVariants();
  // Pretend only variants 0 and 3 completed last time.
  CampaignOptions options = quickOptions(2);
  options.completed.insert({0, variants[0].name});
  options.completed.insert({3, variants[3].name});
  CampaignRunner runner(simFactory(), options);
  std::vector<VariantResult> results = runner.run(variants, smallRequest());
  ASSERT_EQ(results.size(), variants.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i == 0 || i == 3) {
      EXPECT_EQ(results[i].status, "skipped") << i;
    } else {
      EXPECT_EQ(results[i].status, "ok") << results[i].error;
    }
  }
}

TEST(Campaign, ResumingTwiceAppendsZeroNewRows) {
  // End-to-end resume loop over a campaign with BOTH ok and error rows: the
  // CSV must reach its final size after the first run and never grow again,
  // however often the campaign is rerun against the same file. (Error rows
  // used to be considered incomplete, so every rerun re-measured and
  // re-appended them.)
  std::string path = ::testing::TempDir() + "/campaign_resume_twice.csv";
  std::remove(path.c_str());
  std::vector<CampaignVariant> variants = eightVariants();
  CampaignVariant broken;
  broken.name = "zz_broken";
  broken.kind = "asm";
  broken.source = "this is not assembly\n";
  broken.functionName = "microkernel";
  variants.push_back(broken);

  auto countDataLines = [&] {
    std::ifstream in(path);
    std::string line;
    int n = 0;
    while (std::getline(in, line)) {
      if (!line.empty() && line[0] != '#') ++n;
    }
    return n;
  };

  int afterFirst = 0;
  for (int round = 0; round < 3; ++round) {
    CampaignOptions options = quickOptions(2);
    options.verify = VerifyMode::Off;  // let the broken variant reach load()
    options.completed = readCompletedVariants(path);
    CampaignCsvSink sink(path, "# env.test=resume\n");
    CampaignRunner runner(simFactory(), options);
    std::vector<VariantResult> results =
        runner.run(variants, smallRequest(), &sink);
    ASSERT_EQ(results.size(), variants.size());
    if (round == 0) {
      afterFirst = countDataLines();
      EXPECT_EQ(afterFirst, 1 + static_cast<int>(variants.size()));
      EXPECT_EQ(results.back().status, "error");
    } else {
      for (const VariantResult& r : results) {
        EXPECT_EQ(r.status, "skipped") << r.name;
      }
      EXPECT_EQ(countDataLines(), afterFirst) << "round " << round;
    }
  }
  std::remove(path.c_str());
}

TEST(Campaign, TruncatedCsvIsRepairedOnResume) {
  // A campaign killed mid-row leaves a torn final line. Reopening the sink
  // must terminate that line before appending, so the next row cannot
  // concatenate onto it and the file stays parseable.
  std::string path = ::testing::TempDir() + "/campaign_truncated.csv";
  std::remove(path.c_str());
  std::vector<CampaignVariant> variants = eightVariants();
  {
    CampaignCsvSink sink(path);
    CampaignRunner runner(simFactory(), quickOptions(1));
    runner.run(variants, smallRequest(), &sink);
  }
  // Simulate the crash: chop the final row right after its sequence cell,
  // leaving a torn line with no status and no trailing newline.
  std::string content;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream oss;
    oss << in.rdbuf();
    content = oss.str();
  }
  ASSERT_FALSE(content.empty());
  ASSERT_EQ(content.back(), '\n');
  std::size_t lastRowStart = content.rfind('\n', content.size() - 2) + 1;
  std::size_t firstComma = content.find(',', lastRowStart);
  ASSERT_NE(firstComma, std::string::npos);
  fs::resize_file(path, firstComma);

  std::set<std::pair<std::size_t, std::string>> completed =
      readCompletedVariants(path);
  EXPECT_EQ(completed.size(), variants.size() - 1);  // torn row not counted

  CampaignOptions options = quickOptions(1);
  options.completed = completed;
  {
    CampaignCsvSink sink(path);
    CampaignRunner runner(simFactory(), options);
    runner.run(variants, smallRequest(), &sink);
  }
  // Every variant is terminal again, and each full row parses to the full
  // schema width (the torn row stays short but harmless).
  EXPECT_EQ(readCompletedVariants(path).size(), variants.size());
  std::ifstream in(path);
  std::string line;
  std::size_t fullRows = 0;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<std::string> cells = csv::parseLine(line);
    if (cells.size() == CampaignRunner::csvHeader().size()) ++fullRows;
  }
  EXPECT_EQ(fullRows, variants.size());  // N-1 intact + 1 re-measured
  std::remove(path.c_str());
}

TEST(Campaign, SinkRefusesMismatchedHeaderSchema) {
  std::string path = ::testing::TempDir() + "/campaign_old_schema.csv";
  {
    std::ofstream out(path);
    out << "# env.cpu_model=old machine\n";
    out << "sequence,variant,status,cycles\n";  // a pre-counter-era schema
    out << "0,v0,ok,2.5\n";
  }
  EXPECT_THROW(CampaignCsvSink sink(path), McError);
  std::remove(path.c_str());
}

TEST(Campaign, ReadCompletedVariantsCountsEveryTerminalStatus) {
  // Every status the runner writes is terminal: resuming must skip ok rows,
  // error rows (they already consumed their retry), timeouts, and
  // verify-strict skips alike — otherwise each rerun re-appends them and
  // the CSV grows without bound. Only unknown statuses and rows narrower
  // than the schema (the runner always writes full-width rows; anything
  // shorter is a crash-torn remnant) are left for re-measurement.
  std::string path = ::testing::TempDir() + "/campaign_completed.csv";
  std::size_t width = CampaignRunner::csvHeader().size();
  // Pads a row's leading cells out to the schema's full width, the shape
  // every runner-written row has.
  auto fullRow = [width](const std::string& prefix, std::size_t given) {
    return prefix + std::string(width - given, ',') + "\n";
  };
  {
    std::ofstream out(path);
    out << "# env.cpu_model=test\n";  // preamble comments are skipped
    out << CampaignRunner::csvHeader()[0];  // build the real header
    for (std::size_t i = 1; i < CampaignRunner::csvHeader().size(); ++i) {
      out << ',' << CampaignRunner::csvHeader()[i];
    }
    out << "\n";
    out << fullRow("0,0,good_variant,ok,,2.5,2.5,2.5,2.5,0", 10);
    out << fullRow("1,0,failed_variant,error", 4);
    out << fullRow("2,0,\"quoted, name\",ok,,2.5,2.5,2.5,2.5,0", 10);
    out << fullRow("3,0,slow_variant,timeout", 4);
    out << fullRow("4,0,rejected_variant,skipped", 4);
    out << fullRow("5,0,foreign_variant,mystery_status", 4);  // unknown: re-run
    out << fullRow("not a number,0,bad_row,ok", 4);  // bad sequence: ignored
    out << "6,0,short_row,ok\n";  // narrower than the schema: torn, re-run
    out << "7,0,truncated_r";     // crash mid-write: re-run
  }
  std::set<std::pair<std::size_t, std::string>> completed =
      readCompletedVariants(path);
  EXPECT_EQ(completed.size(), 5u);
  EXPECT_TRUE(completed.count({0, "good_variant"}));
  EXPECT_TRUE(completed.count({1, "failed_variant"}));
  EXPECT_TRUE(completed.count({2, "quoted, name"}));
  EXPECT_TRUE(completed.count({3, "slow_variant"}));
  EXPECT_TRUE(completed.count({4, "rejected_variant"}));
  EXPECT_FALSE(completed.count({5, "foreign_variant"}));
  EXPECT_FALSE(completed.count({6, "short_row"}));
  std::remove(path.c_str());
}

TEST(Campaign, ReadCompletedVariantsOfMissingFileIsEmpty) {
  EXPECT_TRUE(readCompletedVariants("/nonexistent/campaign.csv").empty());
}

TEST(Campaign, ReadCompletedVariantsFiltersByRound) {
  // A halving search resumes per round: only rows tagged with the round
  // being re-run may be skipped — a variant screened in round 0 still has
  // to be re-measured at round 1's higher fidelity.
  std::string path = ::testing::TempDir() + "/campaign_rounds.csv";
  std::size_t width = CampaignRunner::csvHeader().size();
  auto fullRow = [width](const std::string& prefix, std::size_t given) {
    return prefix + std::string(width - given, ',') + "\n";
  };
  {
    std::ofstream out(path);
    out << CampaignRunner::csvHeader()[0];
    for (std::size_t i = 1; i < CampaignRunner::csvHeader().size(); ++i) {
      out << ',' << CampaignRunner::csvHeader()[i];
    }
    out << "\n";
    out << fullRow("0,0,u1,ok,,2.5,2.5,2.5,2.5,0", 10);
    out << fullRow("1,0,u2,ok,,3.5,3.5,3.5,3.5,0", 10);
    out << fullRow("0,1,u1,ok,,2.4,2.4,2.4,2.4,0", 10);
    out << fullRow("1,torn,u9,ok", 4);  // unparsable round: re-measure
  }

  std::set<std::pair<std::size_t, std::string>> round0 =
      readCompletedVariants(path, 0);
  EXPECT_EQ(round0.size(), 2u);
  EXPECT_TRUE(round0.count({0, "u1"}));
  EXPECT_TRUE(round0.count({1, "u2"}));

  std::set<std::pair<std::size_t, std::string>> round1 =
      readCompletedVariants(path, 1);
  EXPECT_EQ(round1.size(), 1u);
  EXPECT_TRUE(round1.count({0, "u1"}));
  EXPECT_TRUE(readCompletedVariants(path, 2).empty());

  // The round-agnostic overload still sees every terminal row.
  EXPECT_EQ(readCompletedVariants(path).size(), 3u);
  EXPECT_THROW(readCompletedVariants(path, -1), McError);
  std::remove(path.c_str());
}

TEST(Campaign, ReadCompletedVariantsTreatsLegacyFilesAsRoundZero) {
  // Pre-round-column CSVs (exhaustive sweeps from older builds) are all
  // baseline-fidelity rows: a round-0 filter accepts them, any later
  // round re-measures.
  std::string path = ::testing::TempDir() + "/campaign_legacy_rounds.csv";
  {
    std::ofstream out(path);
    out << "sequence,variant,status\n";
    out << "0,old_a,ok\n";
    out << "1,old_b,error\n";
  }
  EXPECT_EQ(readCompletedVariants(path, 0).size(), 2u);
  EXPECT_TRUE(readCompletedVariants(path, 1).empty());
  std::remove(path.c_str());
}

TEST(Campaign, RoundTagStampsResultsAndCsvRows) {
  std::vector<CampaignVariant> variants = eightVariants();
  variants.resize(2);
  CampaignOptions options = quickOptions(1);
  options.round = 3;
  std::ostringstream csv;
  std::vector<VariantResult> results;
  {
    CampaignCsvSink sink(csv);
    CampaignRunner runner(simFactory(), options);
    results = runner.run(variants, smallRequest(), &sink);
  }
  ASSERT_EQ(results.size(), 2u);
  for (const VariantResult& r : results) EXPECT_EQ(r.round, 3);

  // The round lands in the CSV's second column, where resume reads it back.
  std::istringstream in(csv.str());
  std::string line;
  std::getline(in, line);
  EXPECT_TRUE(strings::startsWith(line, "sequence,round,variant,"));
  std::size_t rows = 0;
  while (std::getline(in, line)) {
    if (line.empty() || strings::startsWith(line, "#")) continue;
    EXPECT_EQ(csv::parseLine(line)[1], "3") << line;
    ++rows;
  }
  EXPECT_EQ(rows, 2u);

  // Cache hits carry the tag too: a hit row must resume under its round.
  options.cacheLookup = [](const CampaignVariant&, VariantResult& out) {
    out.status = "ok";
    out.measurement.cyclesPerIteration.min = 1.25;
    out.repetitions = 3;
    return true;
  };
  CampaignRunner cached(
      [](int) -> std::unique_ptr<Backend> {
        ADD_FAILURE() << "backend built despite 100% cache hits";
        return std::make_unique<FlakyBackend>(0);
      },
      options);
  for (const VariantResult& r : cached.run(variants, smallRequest())) {
    EXPECT_EQ(r.round, 3);
    EXPECT_TRUE(r.cached);
  }
}

// ---------------------------------------------------------------------------
// Cache hooks
// ---------------------------------------------------------------------------

TEST(Campaign, CacheLookupSatisfiesVariantsWithoutBackendWork) {
  std::vector<CampaignVariant> variants = eightVariants();
  CampaignOptions options = quickOptions(2);
  options.cacheLookup = [](const CampaignVariant&, VariantResult& out) {
    out.status = "ok";
    out.measurement.cyclesPerIteration.min = 1.25;
    out.repetitions = 3;
    return true;
  };
  CampaignRunner runner(
      [](int) -> std::unique_ptr<Backend> {
        ADD_FAILURE() << "backend built despite 100% cache hits";
        return std::make_unique<FlakyBackend>(0);
      },
      options);
  std::vector<VariantResult> results = runner.run(variants, smallRequest());
  ASSERT_EQ(results.size(), variants.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].cached);
    EXPECT_EQ(results[i].status, "ok");
    // The runner re-labels the cached payload with this run's identity.
    EXPECT_EQ(results[i].sequence, i);
    EXPECT_EQ(results[i].name, variants[i].name);
    EXPECT_DOUBLE_EQ(results[i].measurement.cyclesPerIteration.min, 1.25);
  }
}

TEST(Campaign, CacheStoreSeesEveryOkResult) {
  std::vector<CampaignVariant> variants = eightVariants();
  CampaignOptions options = quickOptions(2);
  std::mutex mutex;
  std::set<std::string> stored;
  options.cacheStore = [&](const CampaignVariant& v, const VariantResult& r) {
    std::lock_guard<std::mutex> lock(mutex);
    EXPECT_EQ(r.status, "ok");
    stored.insert(v.name);
  };
  CampaignRunner runner(simFactory(), options);
  runner.run(variants, smallRequest());
  EXPECT_EQ(stored.size(), variants.size());
}

// ---------------------------------------------------------------------------
// Degenerate CV (zero-mean samples)
// ---------------------------------------------------------------------------

/// Returns 0 cycles for every invocation: the cycles/iteration mean is 0,
/// so the CV is undefined rather than perfectly stable.
class ZeroCycleBackend final : public Backend {
 public:
  struct FakeKernel final : KernelHandle {};
  std::string name() const override { return "zero"; }
  std::unique_ptr<KernelHandle> load(const std::string&,
                                     const std::string&) override {
    return std::make_unique<FakeKernel>();
  }
  InvokeResult invoke(KernelHandle&, const KernelRequest&) override {
    return InvokeResult{0.0, 10};
  }
  double timerOverheadCycles() const override { return 0.0; }
  std::vector<InvokeResult> invokeFork(KernelHandle&, const KernelRequest&,
                                       int, int, PinPolicy) override {
    throw ExecutionError("no fork mode");
  }
  InvokeResult invokeOpenMp(KernelHandle&, const KernelRequest&, int,
                            int) override {
    throw ExecutionError("no OpenMP mode");
  }
};

TEST(Campaign, ZeroMeanSamplesAreNotReportedAsConverged) {
  CampaignRunner runner(
      [](int) { return std::make_unique<ZeroCycleBackend>(); },
      quickOptions(1));
  std::vector<CampaignVariant> variants{{"zero", "asm", "", "microkernel"}};
  std::vector<VariantResult> results = runner.run(variants, KernelRequest{});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, "ok");
  // The old bug: cv() returned 0.0 for a zero mean, which read as "perfectly
  // stable" and stopped the adaptive loop claiming convergence.
  EXPECT_TRUE(std::isnan(results[0].finalCv));
  EXPECT_FALSE(results[0].converged);
  EXPECT_NE(results[0].note.find("cv undefined"), std::string::npos);
  // And the CSV row must not pretend otherwise.
  std::vector<std::string> row = CampaignRunner::csvRow(results[0]);
  std::vector<std::string> header = CampaignRunner::csvHeader();
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == "converged") {
      EXPECT_EQ(row[i], "0");
    }
    if (header[i] == "note") {
      EXPECT_NE(row[i].find("cv undefined"), std::string::npos);
    }
  }
}

TEST(Campaign, VariantsFromProgramsKeepNamesAndEntryPoints) {
  auto programs = generate(figure6Xml(1, 4, false));
  auto variants = variantsFromPrograms(programs);
  ASSERT_EQ(variants.size(), programs.size());
  for (std::size_t i = 0; i < variants.size(); ++i) {
    EXPECT_EQ(variants[i].name, programs[i].name);
    EXPECT_EQ(variants[i].source, programs[i].asmText);
    EXPECT_EQ(variants[i].functionName, programs[i].functionName);
    EXPECT_EQ(variants[i].kind, "asm");
  }
}

// ---------------------------------------------------------------------------
// Pipelined compile stage
// ---------------------------------------------------------------------------

/// Delegates everything to an inner SimBackend (whose origin-checked handles
/// it passes straight through) while counting prepareBatch calls and the
/// units they carried — instrumentation for the compile pipeline.
class PreparationCountingBackend final : public Backend {
 public:
  PreparationCountingBackend(std::shared_ptr<std::atomic<int>> batchCalls,
                             std::shared_ptr<std::atomic<int>> preparedUnits)
      : inner_(sim::nehalemX5650DualSocket()),
        batchCalls_(std::move(batchCalls)),
        preparedUnits_(std::move(preparedUnits)) {}

  std::string name() const override { return inner_.name(); }
  std::unique_ptr<KernelHandle> load(const std::string& asmText,
                                     const std::string& fn) override {
    return inner_.load(asmText, fn);
  }
  std::vector<SourceUnit> prepareBatch(
      std::vector<SourceUnit> units) override {
    batchCalls_->fetch_add(1);
    preparedUnits_->fetch_add(static_cast<int>(units.size()));
    return units;
  }
  InvokeResult invoke(KernelHandle& kernel,
                      const KernelRequest& request) override {
    return inner_.invoke(kernel, request);
  }
  double timerOverheadCycles() const override {
    return inner_.timerOverheadCycles();
  }
  std::vector<InvokeResult> invokeFork(KernelHandle& kernel,
                                       const KernelRequest& request,
                                       int processes, int calls,
                                       PinPolicy policy) override {
    return inner_.invokeFork(kernel, request, processes, calls, policy);
  }
  InvokeResult invokeOpenMp(KernelHandle& kernel, const KernelRequest& request,
                            int threads, int repetitions) override {
    return inner_.invokeOpenMp(kernel, request, threads, repetitions);
  }
  void reset() override { inner_.reset(); }

 private:
  SimBackend inner_;
  std::shared_ptr<std::atomic<int>> batchCalls_;
  std::shared_ptr<std::atomic<int>> preparedUnits_;
};

TEST(Campaign, PipelinedResultsBitIdenticalAcrossCompileJobGrid) {
  std::vector<CampaignVariant> variants = sixtyFourVariants();
  KernelRequest request = smallRequest();

  CampaignRunner baselineRunner(simFactory(), quickOptions(1));
  std::vector<VariantResult> baseline =
      baselineRunner.run(variants, request);
  ASSERT_EQ(baseline.size(), 64u);
  for (const VariantResult& r : baseline) {
    ASSERT_EQ(r.status, "ok") << r.error;
  }

  struct Grid {
    int jobs, compileJobs, compileBatch;
  };
  for (const Grid& g : {Grid{1, 1, 1}, Grid{2, 2, 3}, Grid{4, 3, 8},
                        Grid{3, 1, 64}}) {
    CampaignOptions options = quickOptions(g.jobs);
    options.compileJobs = g.compileJobs;
    options.compileBatch = g.compileBatch;
    CampaignRunner runner(simFactory(), options);
    std::vector<VariantResult> results = runner.run(variants, request);
    ASSERT_EQ(results.size(), baseline.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i].sequence, i);
      EXPECT_EQ(CampaignRunner::csvRow(baseline[i]),
                CampaignRunner::csvRow(results[i]))
          << "jobs=" << g.jobs << " compileJobs=" << g.compileJobs
          << " compileBatch=" << g.compileBatch << " variant " << i;
    }
  }
}

TEST(Campaign, PipelinedPathRoutesEveryVariantThroughPrepareBatch) {
  auto batchCalls = std::make_shared<std::atomic<int>>(0);
  auto preparedUnits = std::make_shared<std::atomic<int>>(0);
  BackendFactory factory = [batchCalls, preparedUnits](int) {
    return std::make_unique<PreparationCountingBackend>(batchCalls,
                                                        preparedUnits);
  };

  std::vector<CampaignVariant> variants = eightVariants();
  CampaignOptions options = quickOptions(2);
  options.compileJobs = 2;
  options.compileBatch = 3;
  CampaignRunner runner(factory, options);
  std::vector<VariantResult> results =
      runner.run(variants, smallRequest());

  int expectedBatches = static_cast<int>(
      (variants.size() + 2) / 3);  // ceil(variants / compileBatch)
  EXPECT_EQ(batchCalls->load(), expectedBatches);
  EXPECT_EQ(preparedUnits->load(), static_cast<int>(variants.size()));
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].sequence, i);
    EXPECT_EQ(results[i].status, "ok") << results[i].error;
  }
}

/// Like PreparationCountingBackend, but prepareBatch always throws a
/// non-McError exception — the shape of an out-of-memory or bad_alloc-style
/// failure inside a compile producer. The campaign must degrade to inline
/// compilation instead of losing the producer thread (which used to leave
/// the bounded queue open and the measurement workers blocked forever).
class ThrowingPrepareBackend final : public Backend {
 public:
  ThrowingPrepareBackend() : inner_(sim::nehalemX5650DualSocket()) {}

  std::string name() const override { return inner_.name(); }
  std::unique_ptr<KernelHandle> load(const std::string& asmText,
                                     const std::string& fn) override {
    return inner_.load(asmText, fn);
  }
  std::vector<SourceUnit> prepareBatch(std::vector<SourceUnit>) override {
    throw std::runtime_error("simulated compiler driver crash");
  }
  InvokeResult invoke(KernelHandle& kernel,
                      const KernelRequest& request) override {
    return inner_.invoke(kernel, request);
  }
  double timerOverheadCycles() const override {
    return inner_.timerOverheadCycles();
  }
  std::vector<InvokeResult> invokeFork(KernelHandle& kernel,
                                       const KernelRequest& request,
                                       int processes, int calls,
                                       PinPolicy policy) override {
    return inner_.invokeFork(kernel, request, processes, calls, policy);
  }
  InvokeResult invokeOpenMp(KernelHandle& kernel, const KernelRequest& request,
                            int threads, int repetitions) override {
    return inner_.invokeOpenMp(kernel, request, threads, repetitions);
  }
  void reset() override { inner_.reset(); }

 private:
  SimBackend inner_;
};

TEST(Campaign, ThrowingPrepareBatchDoesNotDeadlockTheCampaign) {
  BackendFactory factory = [](int) {
    return std::make_unique<ThrowingPrepareBackend>();
  };
  std::vector<CampaignVariant> variants = eightVariants();
  CampaignOptions options = quickOptions(2);
  options.compileJobs = 2;
  options.compileBatch = 3;
  CampaignRunner runner(factory, options);
  std::vector<VariantResult> results = runner.run(variants, smallRequest());

  ASSERT_EQ(results.size(), variants.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].sequence, i);
    EXPECT_EQ(results[i].status, "ok") << results[i].error;
  }
}

TEST(Campaign, PipelineOptionsAreValidated) {
  CampaignOptions options = quickOptions(1);
  options.compileJobs = -1;
  EXPECT_THROW(CampaignRunner(simFactory(), options), McError);
  options.compileJobs = 0;
  options.compileBatch = 0;
  EXPECT_THROW(CampaignRunner(simFactory(), options), McError);
}

TEST(Campaign, PipelinedCacheStoreSeesOriginalVariantSources) {
  // The cache must be keyed by what the user asked to measure, not by the
  // prepared artifact a compile producer happened to substitute.
  std::vector<CampaignVariant> variants = eightVariants();
  std::mutex mu;
  std::set<std::string> storedSources;
  CampaignOptions options = quickOptions(2);
  options.compileJobs = 1;
  options.compileBatch = 4;
  options.cacheStore = [&](const CampaignVariant& v, const VariantResult&) {
    std::lock_guard<std::mutex> lock(mu);
    storedSources.insert(v.source);
  };
  CampaignRunner runner(simFactory(), options);
  runner.run(variants, smallRequest());

  std::set<std::string> originalSources;
  for (const CampaignVariant& v : variants) originalSources.insert(v.source);
  EXPECT_EQ(storedSources, originalSources);
}

// ---------------------------------------------------------------------------
// Pre-flight verification
// ---------------------------------------------------------------------------

/// A syntactically valid kernel that clobbers the callee-saved %rbx without
/// saving it — exactly the kind of variant that crashes its host process
/// after dlopen; the strict gate must skip it before any backend sees it.
CampaignVariant abiClobberingVariant() {
  CampaignVariant v;
  v.name = "clobbers_rbx";
  v.kind = "asm";
  v.source =
      "microkernel:\n"
      "  mov $7, %rbx\n"
      "  mov $5, %eax\n"
      "  ret\n";
  v.functionName = "microkernel";
  return v;
}

TEST(CampaignVerify, StrictSkipsAbiClobberingVariantWithReasonInCsv) {
  std::vector<CampaignVariant> variants = eightVariants();
  variants.push_back(abiClobberingVariant());
  std::size_t badIndex = variants.size() - 1;

  CampaignOptions options = quickOptions(2);
  options.verify = VerifyMode::Strict;
  std::ostringstream csv;
  CampaignCsvSink sink(csv);
  CampaignRunner runner(simFactory(), options);
  std::vector<VariantResult> results =
      runner.run(variants, smallRequest(), &sink);

  // The campaign completes: every clean variant is measured normally.
  // Pure-load kernels legitimately carry dead-load warnings; strict mode
  // only gates on errors.
  for (std::size_t i = 0; i < badIndex; ++i) {
    EXPECT_EQ(results[i].status, "ok") << results[i].error;
    EXPECT_FALSE(results[i].verify.empty());
    EXPECT_EQ(results[i].verify.find("E:"), std::string::npos)
        << results[i].verify;
  }

  // The bad one is skipped with the rule in both the verdict and the error.
  const VariantResult& bad = results[badIndex];
  EXPECT_EQ(bad.status, "skipped");
  EXPECT_NE(bad.verify.find("MT-ABI01"), std::string::npos) << bad.verify;
  EXPECT_NE(bad.error.find("MT-ABI01"), std::string::npos) << bad.error;
  EXPECT_EQ(bad.attempts, 1);

  // Its CSV row exists, carries the verdict, and the header has the column.
  std::string text = csv.str();
  EXPECT_NE(text.find(",verify,"), std::string::npos);
  std::string row;
  std::istringstream lines(text);
  while (std::getline(lines, row)) {
    if (row.find("clobbers_rbx") != std::string::npos) break;
  }
  EXPECT_NE(row.find("skipped"), std::string::npos) << row;
  EXPECT_NE(row.find("MT-ABI01"), std::string::npos) << row;
}

TEST(CampaignVerify, WarnModeMeasuresFlaggedVariantsAndAnnotates) {
  std::vector<CampaignVariant> variants = {abiClobberingVariant()};
  CampaignOptions options = quickOptions(1);
  options.verify = VerifyMode::Warn;
  CampaignRunner runner(simFactory(), options);
  std::vector<VariantResult> results = runner.run(variants, smallRequest());
  ASSERT_EQ(results.size(), 1u);
  // Warn does not gate: the simulator still measures the variant...
  EXPECT_EQ(results[0].status, "ok") << results[0].error;
  // ...but the verdict lands in the CSV column.
  EXPECT_NE(results[0].verify.find("MT-ABI01"), std::string::npos);
}

TEST(CampaignVerify, OffModeLeavesVerdictEmpty) {
  std::vector<CampaignVariant> variants = {abiClobberingVariant()};
  CampaignOptions options = quickOptions(1);  // verify defaults to Off
  CampaignRunner runner(simFactory(), options);
  std::vector<VariantResult> results = runner.run(variants, smallRequest());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, "ok") << results[0].error;
  EXPECT_TRUE(results[0].verify.empty());
}

TEST(CampaignVerify, ModeNamesParse) {
  EXPECT_EQ(verifyModeFromName("off"), VerifyMode::Off);
  EXPECT_EQ(verifyModeFromName("warn"), VerifyMode::Warn);
  EXPECT_EQ(verifyModeFromName("strict"), VerifyMode::Strict);
  EXPECT_THROW(verifyModeFromName("lenient"), McError);
}

TEST(CampaignVerify, VerifierSlackMatchesLauncherSlack) {
  // verify::LaunchContext promises its default slack equals the launcher's
  // guaranteed over-allocation; a drift here would let the verifier accept
  // accesses the backends do not actually pad for.
  EXPECT_EQ(verify::LaunchContext{}.slackBytes,
            static_cast<std::size_t>(kArraySlackBytes));
}

}  // namespace
}  // namespace microtools::launcher
