#include <gtest/gtest.h>

#include <set>

#include "creator/creator.hpp"
#include "creator/passes.hpp"
#include "support/error.hpp"
#include "test_helpers.hpp"

namespace microtools::creator {
namespace {

using testing::figure6Xml;
using testing::generate;

// ---------------------------------------------------------------------------
// End-to-end variant counting (§5.1: 510 programs from one file)
// ---------------------------------------------------------------------------

TEST(Pipeline, PaperGenerates510Variants) {
  EXPECT_EQ(generate(figure6Xml(1, 8)).size(), 510u);
}

class VariantCount : public ::testing::TestWithParam<int> {};

TEST_P(VariantCount, SumOfTwoToTheU) {
  int maxUnroll = GetParam();
  std::size_t expected = 0;
  for (int u = 1; u <= maxUnroll; ++u) expected += std::size_t{1} << u;
  EXPECT_EQ(generate(figure6Xml(1, maxUnroll)).size(), expected);
}

INSTANTIATE_TEST_SUITE_P(UnrollBounds, VariantCount, ::testing::Range(1, 8));

TEST(Pipeline, NoSwapGivesOneVariantPerUnroll) {
  EXPECT_EQ(generate(figure6Xml(1, 8, /*swapAfter=*/false)).size(), 8u);
}

TEST(Pipeline, VariantNamesAreUnique) {
  auto programs = generate(figure6Xml(1, 6));
  std::set<std::string> names;
  for (const auto& p : programs) names.insert(p.name);
  EXPECT_EQ(names.size(), programs.size());
}

TEST(Pipeline, MaximumBenchmarksCapsOutput) {
  std::string xml = figure6Xml(1, 8);
  xml.insert(xml.find("<kernel>"),
             "<maximum_benchmarks>25</maximum_benchmarks>");
  EXPECT_EQ(generate(xml).size(), 25u);
}

TEST(Pipeline, SwapAfterSequencesCoverAllCombinations) {
  auto programs = generate(figure6Xml(3, 3));
  ASSERT_EQ(programs.size(), 8u);
  std::set<std::string> sequences;
  for (const auto& p : programs) {
    int loads = p.kernel.loadCount();
    int stores = p.kernel.storeCount();
    EXPECT_EQ(loads + stores, 3);
    sequences.insert(p.name.substr(p.name.find("seq")));
  }
  EXPECT_EQ(sequences.size(), 8u);  // LLL, LLS, ..., SSS
}

// §3.2: swapping before unrolling yields only homogeneous kernels; swapping
// after also yields the mixed sequences.
TEST(Pipeline, SwapBeforeYieldsHomogeneousKernels) {
  std::string xml = figure6Xml(2, 2);
  std::size_t pos = xml.find("<swap_after_unroll/>");
  xml.replace(pos, std::string("<swap_after_unroll/>").size(),
              "<swap_before_unroll/>");
  auto programs = generate(xml);
  ASSERT_EQ(programs.size(), 2u);
  for (const auto& p : programs) {
    bool allLoads = p.kernel.loadCount() == 2 && p.kernel.storeCount() == 0;
    bool allStores = p.kernel.storeCount() == 2 && p.kernel.loadCount() == 0;
    EXPECT_TRUE(allLoads || allStores) << p.name;
  }
}

// ---------------------------------------------------------------------------
// Unrolling
// ---------------------------------------------------------------------------

TEST(Unrolling, MemoryOffsetsAdvancePerCopy) {
  auto programs = generate(figure6Xml(3, 3, /*swapAfter=*/false));
  ASSERT_EQ(programs.size(), 1u);
  const ir::Kernel& kernel = programs[0].kernel;
  ASSERT_EQ(kernel.body.size(), 3u);
  for (int copy = 0; copy < 3; ++copy) {
    const auto& instr = kernel.body[static_cast<std::size_t>(copy)];
    EXPECT_EQ(instr.unrollCopy, copy);
    const auto& mem = std::get<ir::MemOperand>(instr.operands[0]);
    EXPECT_EQ(mem.offset, 16 * copy);
  }
  EXPECT_EQ(kernel.unrollFactor, 3);
}

TEST(Unrolling, TagsRecordFactor) {
  auto programs = generate(figure6Xml(2, 4, false));
  ASSERT_EQ(programs.size(), 3u);
  EXPECT_NE(programs[0].name.find("u2"), std::string::npos);
  EXPECT_NE(programs[2].name.find("u4"), std::string::npos);
}

// ---------------------------------------------------------------------------
// RegisterRotation
// ---------------------------------------------------------------------------

TEST(RegisterRotation, DistinctXmmPerCopy) {
  auto programs = generate(figure6Xml(3, 3, false));
  const ir::Kernel& kernel = programs[0].kernel;
  for (int copy = 0; copy < 3; ++copy) {
    const auto& reg = std::get<ir::RegOperand>(
        kernel.body[static_cast<std::size_t>(copy)].operands[1]);
    ASSERT_TRUE(reg.phys);
    EXPECT_EQ(reg.phys->cls, isa::RegClass::Xmm);
    EXPECT_EQ(reg.phys->index, copy);  // min 0, max 8 -> xmm0,1,2
  }
}

TEST(RegisterRotation, WrapsAroundRange) {
  // Range [0, 2) with unroll 5 -> xmm0, xmm1, xmm0, xmm1, xmm0.
  std::string xml = figure6Xml(5, 5, false);
  std::size_t pos = xml.find("<max>8</max>");
  xml.replace(pos, std::string("<max>8</max>").size(), "<max>2</max>");
  auto programs = generate(xml);
  const ir::Kernel& kernel = programs[0].kernel;
  for (int copy = 0; copy < 5; ++copy) {
    const auto& reg = std::get<ir::RegOperand>(
        kernel.body[static_cast<std::size_t>(copy)].operands[1]);
    EXPECT_EQ(reg.phys->index, copy % 2);
  }
}

// ---------------------------------------------------------------------------
// RegisterAllocation, LoopCounterSetup, PrologueEpilogue
// ---------------------------------------------------------------------------

TEST(RegisterAllocation, CounterGetsRdiPointerGetsRsi) {
  auto programs = generate(figure6Xml(1, 1, false));
  const ir::Kernel& kernel = programs[0].kernel;
  const auto& mem = std::get<ir::MemOperand>(kernel.body[0].operands[0]);
  ASSERT_TRUE(mem.base.phys);
  EXPECT_EQ(mem.base.phys->index, isa::kRsi);
  const ir::InductionVar* last = kernel.lastInduction();
  ASSERT_NE(last, nullptr);
  EXPECT_EQ(last->reg.phys->index, isa::kRdi);
  EXPECT_EQ(kernel.arrayCount, 1);
}

TEST(RegisterAllocation, MultipleArraysUseArgumentOrder) {
  auto programs = generate(testing::movssLoadXml(1, 1, 3));
  const ir::Kernel& kernel = programs[0].kernel;
  EXPECT_EQ(kernel.arrayCount, 3);
  std::vector<int> expected{isa::kRsi, isa::kRdx, isa::kRcx};
  for (int a = 0; a < 3; ++a) {
    const auto& mem = std::get<ir::MemOperand>(
        kernel.body[static_cast<std::size_t>(a)].operands[0]);
    EXPECT_EQ(mem.base.phys->index, expected[static_cast<std::size_t>(a)]);
  }
}

TEST(LoopCounterSetup, SynthesizesEaxCounter) {
  auto programs = generate(figure6Xml(1, 1, false));
  const ir::Kernel& kernel = programs[0].kernel;
  bool hasEax = false;
  for (const ir::InductionVar& iv : kernel.inductions) {
    if (iv.reg.phys && iv.reg.phys->index == isa::kRax) {
      hasEax = true;
      EXPECT_TRUE(iv.notAffectedByUnroll);
      EXPECT_EQ(iv.increment, 1);
    }
  }
  EXPECT_TRUE(hasEax);
}

TEST(PrologueEpilogue, SignExtendZeroAndRet) {
  auto programs = generate(figure6Xml(1, 1, false));
  const ir::Kernel& kernel = programs[0].kernel;
  ASSERT_GE(kernel.prologue.size(), 2u);
  EXPECT_EQ(kernel.prologue[0].operation, "movslq");
  EXPECT_EQ(kernel.prologue[1].operation, "xor");
  ASSERT_EQ(kernel.epilogue.size(), 1u);
  EXPECT_EQ(kernel.epilogue[0].operation, "ret");
}

// ---------------------------------------------------------------------------
// InductionLinking / InductionInsertion (Figure 8 semantics)
// ---------------------------------------------------------------------------

TEST(InductionLinking, Figure8Increments) {
  auto programs = generate(figure6Xml(3, 3, false));
  const ir::Kernel& kernel = programs[0].kernel;
  // add $48, %rsi / add $1, %eax / sub $12, %rdi
  ASSERT_EQ(kernel.loopMaintenance.size(), 3u);
  EXPECT_EQ(kernel.loopMaintenance[0].render(), "add $48, %rsi");
  EXPECT_EQ(kernel.loopMaintenance[1].render(), "add $1, %eax");
  EXPECT_EQ(kernel.loopMaintenance[2].render(), "sub $12, %rdi");
}

TEST(InductionLinking, ElementSizeScalesLink) {
  // element_size 8 -> counter steps by offset/8 = 2 per copy.
  std::string xml = figure6Xml(4, 4, false);
  std::size_t pos = xml.find("<last_induction/>");
  xml.insert(pos, "<element_size>8</element_size>");
  auto programs = generate(xml);
  const ir::Kernel& kernel = programs[0].kernel;
  // -1 * 4 (unroll) * (16/8) = -8
  EXPECT_EQ(kernel.loopMaintenance.back().render(), "sub $8, %rdi");
}

TEST(InductionLinking, NotAffectedUnrollKeepsIncrement) {
  auto programs = generate(figure6Xml(8, 8, false));
  const ir::Kernel& kernel = programs[0].kernel;
  // The synthesized %eax counter stays at +1 regardless of unroll.
  EXPECT_EQ(kernel.loopMaintenance[1].render(), "add $1, %eax");
}

TEST(InductionInsertion, LastInductionComesLast) {
  auto programs = generate(figure6Xml(2, 2, false));
  const ir::Kernel& kernel = programs[0].kernel;
  const ir::Instruction& last = kernel.loopMaintenance.back();
  const auto& reg = std::get<ir::RegOperand>(last.operands[1]);
  EXPECT_EQ(reg.phys->index, isa::kRdi);
}

// ---------------------------------------------------------------------------
// Selection passes
// ---------------------------------------------------------------------------

TEST(MoveSemantics, AlignedSixteenFansOutTwoMoves) {
  auto programs = generate(
      R"(<kernel>
           <instruction>
             <move_semantic><bytes>16</bytes><aligned/></move_semantic>
             <memory><register><name>r1</name></register></memory>
             <register><phyName>%xmm0</phyName></register>
           </instruction>
           <induction><register><name>r1</name></register>
             <increment>16</increment></induction>
           <induction><register><name>r0</name></register>
             <increment>-1</increment><last_induction/></induction>
           <branch_information><label>L1</label><test>jge</test>
           </branch_information>
         </kernel>)");
  ASSERT_EQ(programs.size(), 2u);
  EXPECT_EQ(programs[0].kernel.body[0].operation, "movaps");
  EXPECT_EQ(programs[1].kernel.body[0].operation, "movapd");
}

TEST(MoveSemantics, AlignedPlusUnalignedGivesFour) {
  auto programs = generate(
      R"(<kernel>
           <instruction>
             <move_semantic><bytes>16</bytes><aligned/><unaligned/>
             </move_semantic>
             <memory><register><name>r1</name></register></memory>
             <register><phyName>%xmm0</phyName></register>
           </instruction>
           <induction><register><name>r1</name></register>
             <increment>16</increment></induction>
           <induction><register><name>r0</name></register>
             <increment>-1</increment><last_induction/></induction>
           <branch_information><label>L1</label><test>jge</test>
           </branch_information>
         </kernel>)");
  EXPECT_EQ(programs.size(), 4u);
}

TEST(OperationChoices, ExhaustiveFanOutWithoutRandom) {
  auto programs = generate(
      R"(<kernel>
           <instruction>
             <operation>movss</operation>
             <operation>movsd</operation>
             <operation>movaps</operation>
             <memory><register><name>r1</name></register></memory>
             <register><phyName>%xmm0</phyName></register>
           </instruction>
           <induction><register><name>r1</name></register>
             <increment>16</increment></induction>
           <induction><register><name>r0</name></register>
             <increment>-1</increment><last_induction/></induction>
           <branch_information><label>L1</label><test>jge</test>
           </branch_information>
         </kernel>)");
  ASSERT_EQ(programs.size(), 3u);
}

TEST(RandomSelection, DeterministicAcrossRunsWithSameSeed) {
  const char* xml =
      R"(<description><seed>7</seed><kernel>
           <instruction>
             <operation>movss</operation>
             <operation>movsd</operation>
             <random_choice/>
             <memory><register><name>r1</name></register></memory>
             <register><phyName>%xmm0</phyName></register>
           </instruction>
           <induction><register><name>r1</name></register>
             <increment>16</increment></induction>
           <induction><register><name>r0</name></register>
             <increment>-1</increment><last_induction/></induction>
           <branch_information><label>L1</label><test>jge</test>
           </branch_information>
         </kernel></description>)";
  auto a = generate(xml);
  auto b = generate(xml);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0].kernel.body[0].operation, b[0].kernel.body[0].operation);
}

TEST(ImmediateSelection, FansOutEveryValue) {
  auto programs = generate(
      R"(<kernel>
           <instruction>
             <operation>add</operation>
             <immediate><min>0</min><max>24</max><step>8</step></immediate>
             <register><name>r1</name></register>
           </instruction>
           <induction><register><name>r1</name></register>
             <increment>16</increment></induction>
           <induction><register><name>r0</name></register>
             <increment>-1</increment><last_induction/></induction>
           <branch_information><label>L1</label><test>jge</test>
           </branch_information>
         </kernel>)");
  EXPECT_EQ(programs.size(), 4u);  // 0, 8, 16, 24
}

TEST(StrideSelection, FansOutEveryStride) {
  auto programs = generate(
      R"(<kernel>
           <instruction>
             <operation>movss</operation>
             <memory><register><name>r1</name></register></memory>
             <register><phyName>%xmm0</phyName></register>
           </instruction>
           <induction><register><name>r1</name></register>
             <increment>4</increment><increment>8</increment>
             <increment>16</increment></induction>
           <induction><register><name>r0</name></register>
             <increment>-1</increment><last_induction/></induction>
           <branch_information><label>L1</label><test>jge</test>
           </branch_information>
         </kernel>)");
  ASSERT_EQ(programs.size(), 3u);
  std::set<std::string> tails;
  for (const auto& p : programs) {
    const ir::Instruction& inc = p.kernel.loopMaintenance[0];
    tails.insert(inc.render());
  }
  EXPECT_EQ(tails, (std::set<std::string>{"add $4, %rsi", "add $8, %rsi",
                                          "add $16, %rsi"}));
}

TEST(InstructionRepetition, RepeatsFanOut) {
  auto programs = generate(
      R"(<kernel>
           <instruction>
             <operation>movss</operation>
             <memory><register><name>r1</name></register></memory>
             <register><phyName>%xmm0</phyName></register>
             <repeat><min>1</min><max>3</max></repeat>
           </instruction>
           <induction><register><name>r1</name></register>
             <increment>4</increment></induction>
           <induction><register><name>r0</name></register>
             <increment>-1</increment><last_induction/></induction>
           <branch_information><label>L1</label><test>jge</test>
           </branch_information>
         </kernel>)");
  ASSERT_EQ(programs.size(), 3u);
  EXPECT_EQ(programs[0].kernel.body.size(), 1u);
  EXPECT_EQ(programs[1].kernel.body.size(), 2u);
  EXPECT_EQ(programs[2].kernel.body.size(), 3u);
}

// ---------------------------------------------------------------------------
// Scheduling & Peephole
// ---------------------------------------------------------------------------

TEST(Scheduling, InterleavesLoadsAndStores) {
  std::string xml = figure6Xml(4, 4);
  xml.insert(xml.find("<kernel>"), "<schedule>interleave</schedule>");
  auto programs = generate(xml);
  // Find the LLSS variant; after interleaving it should read L,S,L,S.
  for (const auto& p : programs) {
    if (p.name.find("seqLLSS") == std::string::npos) continue;
    ASSERT_NE(p.name.find("sched_il"), std::string::npos);
    const auto& body = p.kernel.body;
    ASSERT_EQ(body.size(), 4u);
    EXPECT_TRUE(body[0].isLoad());
    EXPECT_TRUE(body[1].isStore());
    EXPECT_TRUE(body[2].isLoad());
    EXPECT_TRUE(body[3].isStore());
    return;
  }
  FAIL() << "seqLLSS variant not found";
}

TEST(Peephole, DropsZeroIncrements) {
  auto programs = generate(
      R"(<kernel>
           <instruction>
             <operation>movss</operation>
             <memory><register><name>r1</name></register></memory>
             <register><phyName>%xmm0</phyName></register>
           </instruction>
           <induction><register><name>r1</name></register>
             <increment>0</increment></induction>
           <induction><register><name>r0</name></register>
             <increment>-1</increment><last_induction/></induction>
           <branch_information><label>L1</label><test>jge</test>
           </branch_information>
         </kernel>)");
  const ir::Kernel& kernel = programs[0].kernel;
  for (const ir::Instruction& instr : kernel.loopMaintenance) {
    if (instr.operands.size() == 2) {
      const auto* imm = std::get_if<ir::ImmOperand>(&instr.operands[0]);
      if (imm) EXPECT_NE(imm->value, 0) << instr.render();
    }
  }
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

TEST(Validation, RejectsUnknownOperation) {
  EXPECT_THROW(generate(
                   R"(<kernel>
                        <instruction><operation>frobnicate</operation>
                        </instruction>
                      </kernel>)"),
               DescriptionError);
}

TEST(Validation, RejectsNonBranchTest) {
  std::string xml = figure6Xml();
  std::size_t pos = xml.find("<test>jge</test>");
  xml.replace(pos, std::string("<test>jge</test>").size(),
              "<test>add</test>");
  EXPECT_THROW(generate(xml), DescriptionError);
}

TEST(Validation, RejectsLinkToUnknownRegister) {
  std::string xml = figure6Xml();
  std::size_t pos = xml.find("<linked><register><name>r1</name>");
  xml.replace(pos, std::string("<linked><register><name>r1</name>").size(),
              "<linked><register><name>rZ</name>");
  EXPECT_THROW(generate(xml), DescriptionError);
}

TEST(Validation, DefaultsLastInductionToFinalOne) {
  // Without an explicit <last_induction/>, the final induction drives the
  // loop (matching Figure 6's layout).
  auto programs = generate(
      R"(<kernel>
           <instruction>
             <operation>movss</operation>
             <memory><register><name>r1</name></register></memory>
             <register><phyName>%xmm0</phyName></register>
           </instruction>
           <induction><register><name>r1</name></register>
             <increment>4</increment></induction>
           <induction><register><name>r0</name></register>
             <increment>-1</increment></induction>
           <branch_information><label>L1</label><test>jge</test>
           </branch_information>
         </kernel>)");
  const ir::InductionVar* last = programs[0].kernel.lastInduction();
  ASSERT_NE(last, nullptr);
  EXPECT_EQ(last->reg.phys->index, isa::kRdi);
}

// ---------------------------------------------------------------------------
// PassManager surface
// ---------------------------------------------------------------------------

TEST(PassManager, StandardPipelineHasTwentyPasses) {
  PassManager pm = PassManager::standardPipeline();
  EXPECT_EQ(pm.size(), 20u);
  EXPECT_EQ(pm.passNames().front(), "ValidateDescription");
  EXPECT_EQ(pm.passNames().back(), "Verification");
}

TEST(PassManager, AddBeforeAfterRemoveReplace) {
  PassManager pm = PassManager::standardPipeline();
  pm.addPassAfter("Unrolling", std::make_unique<LambdaPass>(
                                   "After", [](GenerationState&) {}));
  pm.addPassBefore("Unrolling", std::make_unique<LambdaPass>(
                                    "Before", [](GenerationState&) {}));
  auto names = pm.passNames();
  auto find = [&names](const std::string& n) {
    return std::find(names.begin(), names.end(), n) - names.begin();
  };
  EXPECT_EQ(find("Before") + 1, find("Unrolling"));
  EXPECT_EQ(find("Unrolling") + 1, find("After"));

  pm.removePass("Before");
  EXPECT_EQ(pm.find("Before"), nullptr);

  pm.replacePass("After", std::make_unique<LambdaPass>(
                              "Replacement", [](GenerationState&) {}));
  EXPECT_EQ(pm.find("After"), nullptr);
  EXPECT_NE(pm.find("Replacement"), nullptr);
  EXPECT_EQ(pm.size(), 21u);  // 20 standard + the surviving added pass
}

TEST(PassManager, UnknownAnchorsThrow) {
  PassManager pm = PassManager::standardPipeline();
  EXPECT_THROW(pm.removePass("NoSuchPass"), McError);
  EXPECT_THROW(pm.addPassAfter("NoSuchPass",
                               std::make_unique<LambdaPass>(
                                   "X", [](GenerationState&) {})),
               McError);
}

TEST(PassManager, DuplicateNamesRejected) {
  PassManager pm = PassManager::standardPipeline();
  EXPECT_THROW(
      pm.addPass(std::make_unique<LambdaPass>("Unrolling",
                                              [](GenerationState&) {})),
      McError);
}

TEST(PassManager, GateOverrideSkipsPass) {
  MicroCreator mc;
  // Gating off Unrolling leaves the kernel at factor 1 even though the
  // description asks for 4.
  mc.passManager().setGate("Unrolling",
                           [](const GenerationState&) { return false; });
  // OperandSwapAfterUnroll would still fan out; disable it too.
  mc.passManager().setGate("OperandSwapAfterUnroll",
                           [](const GenerationState&) { return false; });
  auto programs = mc.generateFromText(figure6Xml(4, 4));
  ASSERT_EQ(programs.size(), 1u);
  EXPECT_EQ(programs[0].kernel.body.size(), 1u);
  EXPECT_EQ(programs[0].kernel.unrollFactor, 1);
}

TEST(PassManager, CustomPassObservesKernels) {
  MicroCreator mc;
  int observed = -1;
  mc.passManager().addPassAfter(
      "OperandSwapAfterUnroll",
      std::make_unique<LambdaPass>("Counter",
                                   [&observed](GenerationState& state) {
                                     observed = static_cast<int>(
                                         state.kernels.size());
                                   }));
  auto programs = mc.generateFromText(figure6Xml(1, 4));
  EXPECT_EQ(observed, 2 + 4 + 8 + 16);
  EXPECT_EQ(programs.size(), 30u);
}

}  // namespace
}  // namespace microtools::creator
