#include <gtest/gtest.h>

#include "creator/emit.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"
#include "test_helpers.hpp"

namespace microtools::creator {
namespace {

using testing::figure6Xml;
using testing::generate;

std::vector<std::string> nonEmptyLines(const std::string& text) {
  std::vector<std::string> out;
  for (const std::string& line : strings::split(text, '\n')) {
    auto trimmed = strings::trim(line);
    if (!trimmed.empty()) out.emplace_back(trimmed);
  }
  return out;
}

TEST(EmitAsm, ReproducesPaperFigure8) {
  // The unroll-3 store/load/store variant must match Figure 8's loop.
  auto programs = generate(figure6Xml(3, 3));
  const GeneratedProgram* target = nullptr;
  for (const auto& p : programs) {
    if (p.name.find("seqSLS") != std::string::npos) target = &p;
  }
  ASSERT_NE(target, nullptr);
  const std::string& text = target->asmText;
  EXPECT_NE(text.find(".L6:"), std::string::npos);
  EXPECT_NE(text.find("movaps %xmm0, (%rsi)"), std::string::npos);
  EXPECT_NE(text.find("movaps 16(%rsi), %xmm1"), std::string::npos);
  EXPECT_NE(text.find("movaps %xmm2, 32(%rsi)"), std::string::npos);
  EXPECT_NE(text.find("add $48, %rsi"), std::string::npos);
  EXPECT_NE(text.find("sub $12, %rdi"), std::string::npos);
  EXPECT_NE(text.find("jge .L6"), std::string::npos);
}

TEST(EmitAsm, ContainsFunctionSymbolBoilerplate) {
  auto programs = generate(figure6Xml(1, 1, false));
  const std::string& text = programs[0].asmText;
  EXPECT_NE(text.find(".globl microkernel"), std::string::npos);
  EXPECT_NE(text.find(".type microkernel, @function"), std::string::npos);
  EXPECT_NE(text.find("microkernel:"), std::string::npos);
  EXPECT_NE(text.find(".size microkernel"), std::string::npos);
  EXPECT_NE(text.find(".note.GNU-stack"), std::string::npos);
}

TEST(EmitAsm, AlignmentDirectiveMatchesRequest) {
  std::string xml = figure6Xml(1, 1, false);
  xml.insert(xml.find("</kernel>"), "<alignment>64</alignment>");
  auto programs = generate(xml);
  EXPECT_NE(programs[0].asmText.find(".p2align 6"), std::string::npos);
}

TEST(EmitAsm, PrologueBeforeLabelBodyAfter) {
  auto programs = generate(figure6Xml(1, 1, false));
  auto lines = nonEmptyLines(programs[0].asmText);
  auto indexOf = [&lines](const std::string& needle) {
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (lines[i].find(needle) != std::string::npos) {
        return static_cast<std::ptrdiff_t>(i);
      }
    }
    return static_cast<std::ptrdiff_t>(-1);
  };
  EXPECT_LT(indexOf("movslq %edi, %rdi"), indexOf(".L6:"));
  EXPECT_LT(indexOf(".L6:"), indexOf("movaps"));
  EXPECT_LT(indexOf("movaps"), indexOf("jge .L6"));
  EXPECT_LT(indexOf("jge .L6"), indexOf("ret"));
}

TEST(EmitAsm, CustomFunctionName) {
  std::string xml = figure6Xml(1, 1, false);
  xml.insert(xml.find("<kernel>"),
             "<function_name>my_kernel</function_name>");
  auto programs = generate(xml);
  EXPECT_EQ(programs[0].functionName, "my_kernel");
  EXPECT_NE(programs[0].asmText.find("my_kernel:"), std::string::npos);
}

// ---------------------------------------------------------------------------
// C emission
// ---------------------------------------------------------------------------

std::string emitCFor(const std::string& xml) {
  std::string withC = xml;
  withC.insert(withC.find("<kernel>"), "<emit_c/>");
  auto programs = generate(withC);
  return programs.at(0).cText;
}

TEST(EmitC, ProducesFunctionWithArrayArguments) {
  std::string c = emitCFor(figure6Xml(2, 2, false));
  EXPECT_NE(c.find("int microkernel(int n, void* a0)"), std::string::npos);
  EXPECT_NE(c.find("do {"), std::string::npos);
  EXPECT_NE(c.find("} while (r_rdi >= 0);"), std::string::npos);
  EXPECT_NE(c.find("return (int)r_rax;"), std::string::npos);
}

TEST(EmitC, SixteenByteMovesUseVectorHelpers) {
  std::string c = emitCFor(figure6Xml(1, 1, false));
  EXPECT_NE(c.find("mc_load16"), std::string::npos);
}

TEST(EmitC, StoresEmitWhenSwapped) {
  // Generate both load and store variants at unroll 1.
  std::string withC = figure6Xml(1, 1, true);
  withC.insert(withC.find("<kernel>"), "<emit_c/>");
  auto programs = generate(withC);
  ASSERT_EQ(programs.size(), 2u);
  bool sawStore = false;
  for (const auto& p : programs) {
    if (p.cText.find("mc_store16") != std::string::npos) sawStore = true;
  }
  EXPECT_TRUE(sawStore);
}

TEST(EmitC, ScalarMovesUseVolatileTypedPointers) {
  std::string c = emitCFor(testing::movssLoadXml(1, 1));
  EXPECT_NE(c.find("volatile const float"), std::string::npos);
}

TEST(EmitC, InductionUpdatesPresent) {
  std::string c = emitCFor(figure6Xml(3, 3, false));
  EXPECT_NE(c.find("r_rsi += 48L;"), std::string::npos);
  EXPECT_NE(c.find("r_rdi -= 12L;"), std::string::npos);
  EXPECT_NE(c.find("r_rax += 1L;"), std::string::npos);
}

TEST(EmitC, EmptyByDefault) {
  auto programs = generate(figure6Xml(1, 1, false));
  EXPECT_TRUE(programs[0].cText.empty());
}

TEST(EmitC, CompilesStandalone) {
  // The emitted C must at least be valid C syntax for the system compiler.
  std::string c = emitCFor(figure6Xml(2, 2, false));
  std::string path = ::testing::TempDir() + "/mt_emitc_test.c";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fwrite(c.data(), 1, c.size(), f);
    std::fclose(f);
  }
  std::string cmd = "cc -std=c11 -O2 -fsyntax-only " + path + " 2>/dev/null";
  EXPECT_EQ(std::system(cmd.c_str()), 0) << c;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace microtools::creator
