#include <gtest/gtest.h>

#include "asmparse/asmparse.hpp"
#include "sim/core.hpp"
#include "support/error.hpp"
#include "test_helpers.hpp"

namespace microtools::sim {
namespace {

MachineConfig cfg() { return nehalemX5650DualSocket(); }

RunResult runAsm(const std::string& asmText, int n,
                 std::vector<std::uint64_t> arrays,
                 MachineConfig machine = cfg(), bool warm = true,
                 std::uint64_t warmBytes = 0) {
  asmparse::Program program = asmparse::parseAssembly(asmText);
  MemorySystem ms(machine);
  if (warm) {
    for (std::uint64_t base : arrays) {
      ms.touch(0, base,
               warmBytes ? warmBytes
                         : static_cast<std::uint64_t>(n) * 16 + 64);
    }
  }
  CoreSim core(machine, ms, 0);
  return core.run(program, n, arrays);
}

// ---------------------------------------------------------------------------
// Functional correctness
// ---------------------------------------------------------------------------

TEST(CoreFunctional, CountsLoopIterations) {
  RunResult r = runAsm(
      "f:\n"
      " movslq %edi, %rdi\n"
      " xor %eax, %eax\n"
      ".L1:\n"
      " add $1, %eax\n"
      " sub $1, %rdi\n"
      " jge .L1\n"
      " ret\n",
      99, {});
  EXPECT_EQ(r.iterations, 100u);  // do-while semantics: 99 down to -1
}

TEST(CoreFunctional, JgStopsAtZero) {
  RunResult r = runAsm(
      "f:\n"
      " movslq %edi, %rdi\n"
      " xor %eax, %eax\n"
      ".L1:\n"
      " add $1, %eax\n"
      " sub $1, %rdi\n"
      " jg .L1\n"
      " ret\n",
      100, {});
  EXPECT_EQ(r.iterations, 100u);
}

TEST(CoreFunctional, JneExactCount) {
  RunResult r = runAsm(
      "f:\n"
      " movslq %edi, %rdi\n"
      " xor %eax, %eax\n"
      ".L1:\n"
      " add $1, %eax\n"
      " sub $1, %rdi\n"
      " jne .L1\n"
      " ret\n",
      42, {});
  EXPECT_EQ(r.iterations, 42u);
}

TEST(CoreFunctional, RegisterArithmetic) {
  // Compute ((5 << 2) | 3) & 14 ^ 1 - into eax via mov/shl/or/and/xor.
  RunResult r = runAsm(
      "f:\n"
      " mov $5, %rax\n"
      " shl $2, %rax\n"   // 20
      " or $3, %rax\n"    // 23
      " and $14, %rax\n"  // 6
      " xor $1, %rax\n"   // 7
      " ret\n",
      0, {});
  EXPECT_EQ(r.iterations, 7u);
}

TEST(CoreFunctional, LeaComputesAddress) {
  RunResult r = runAsm(
      "f:\n"
      " mov $10, %rax\n"
      " mov $3, %rcx\n"
      " lea 5(%rax,%rcx,4), %rax\n"  // 10 + 12 + 5 = 27
      " ret\n",
      0, {});
  EXPECT_EQ(r.iterations, 27u);
}

TEST(CoreFunctional, ImulAndIncDec) {
  RunResult r = runAsm(
      "f:\n"
      " mov $6, %rax\n"
      " imul $7, %rax\n"  // 42
      " inc %rax\n"       // 43
      " dec %rax\n"
      " dec %rax\n"       // 41
      " ret\n",
      0, {});
  EXPECT_EQ(r.iterations, 41u);
}

TEST(CoreFunctional, ThirtyTwoBitWritesZeroExtend) {
  RunResult r = runAsm(
      "f:\n"
      " mov $-1, %rax\n"
      " mov $7, %eax\n"  // clears the upper half
      " ret\n",
      0, {});
  EXPECT_EQ(r.iterations, 7u);
}

TEST(CoreFunctional, MovslqSignExtends) {
  // n arrives in %edi; movslq must preserve negative trip counts.
  asmparse::Program p = asmparse::parseAssembly(
      "f:\n"
      " movslq %edi, %rdi\n"
      " xor %eax, %eax\n"
      ".L1:\n"
      " add $1, %eax\n"
      " sub $1, %rdi\n"
      " jge .L1\n"
      " ret\n");
  MachineConfig machine = cfg();
  MemorySystem ms(machine);
  CoreSim core(machine, ms, 0);
  RunResult r = core.run(p, -5, {});
  EXPECT_EQ(r.iterations, 1u);  // loop body executes once (do-while)
}

TEST(CoreFunctional, CmpBranchUnsigned) {
  RunResult r = runAsm(
      "f:\n"
      " xor %eax, %eax\n"
      " mov $5, %rcx\n"
      " cmp $3, %rcx\n"
      " ja .Lbig\n"
      " mov $1, %rax\n"
      " ret\n"
      ".Lbig:\n"
      " mov $2, %rax\n"
      " ret\n",
      0, {});
  EXPECT_EQ(r.iterations, 2u);
}

TEST(CoreFunctional, GeneratedKernelIterations) {
  // Property: for every unroll factor, the Figure-6 kernel executes
  // floor(n / (4u)) + 1 loop trips (movaps counts 4 elements per copy).
  for (int u = 1; u <= 8; ++u) {
    auto programs =
        microtools::testing::generate(microtools::testing::figure6Xml(u, u,
                                                                      false));
    ASSERT_EQ(programs.size(), 1u);
    int n = 4096;
    RunResult r = runAsm(programs[0].asmText, n, {0x100000});
    EXPECT_EQ(r.iterations,
              static_cast<std::uint64_t>(n / (4 * u)) + 1)
        << "unroll " << u;
  }
}

TEST(CoreFunctional, InstructionAndUopCounts) {
  RunResult r = runAsm(
      "f:\n"
      " xor %eax, %eax\n"
      " add $1, %eax\n"
      " ret\n",
      0, {});
  EXPECT_EQ(r.instructions, 3u);  // xor, add, ret
  EXPECT_EQ(r.uops, 2u);          // ret dispatches no uop
}

// ---------------------------------------------------------------------------
// Timing behaviour
// ---------------------------------------------------------------------------

std::string loadKernel(int loads, const char* mnemonic, int stride) {
  std::string body;
  for (int i = 0; i < loads; ++i) {
    body += " " + std::string(mnemonic) + " " +
            std::to_string(i * stride) + "(%rsi), %xmm" +
            std::to_string(i % 8) + "\n";
  }
  return "f:\n movslq %edi, %rdi\n xor %eax, %eax\n.L1:\n" + body +
         " add $" + std::to_string(loads * stride) + ", %rsi\n" +
         " add $1, %eax\n sub $1, %rdi\n jge .L1\n ret\n";
}

TEST(CoreTiming, L1LoadThroughputIsOnePerCycle) {
  // Nehalem has one load port: 8 independent L1 loads take ~8 cycles/iter.
  // The traversal (100 iterations x 128 bytes) fits L1 and is pre-warmed.
  RunResult r = runAsm(loadKernel(8, "movaps", 16), 100, {0x100000}, cfg(),
                       true, 100 * 128 + 128);
  double perIter = static_cast<double>(r.coreCycles) /
                   static_cast<double>(r.iterations);
  EXPECT_GT(perIter, 7.5);
  EXPECT_LT(perIter, 9.5);
}

TEST(CoreTiming, SandyBridgeDualLoadPortsAreFaster) {
  MachineConfig sb = sandyBridgeE31240();
  std::string k = loadKernel(8, "movaps", 16);
  RunResult nh = runAsm(k, 100, {0x100000}, cfg(), true, 100 * 128 + 128);
  RunResult sbr = runAsm(k, 100, {0x100000}, sb, true, 100 * 128 + 128);
  double nhPer = static_cast<double>(nh.coreCycles) / nh.iterations;
  double sbPer = static_cast<double>(sbr.coreCycles) / sbr.iterations;
  EXPECT_LT(sbPer, nhPer);
}

TEST(CoreTiming, ColdRunSlowerThanWarm) {
  std::string k = loadKernel(4, "movaps", 16);
  RunResult cold = runAsm(k, 4000, {0x100000}, cfg(), /*warm=*/false);
  RunResult warm = runAsm(k, 4000, {0x100000}, cfg(), /*warm=*/true);
  EXPECT_GT(cold.coreCycles, warm.coreCycles);
}

TEST(CoreTiming, DependencyChainLimitsThroughput) {
  // addsd chain: 3-cycle latency each, fully serialized.
  std::string chained =
      "f:\n movslq %edi, %rdi\n xor %eax, %eax\n.L1:\n"
      " addsd %xmm0, %xmm1\n"
      " addsd %xmm0, %xmm1\n"
      " addsd %xmm0, %xmm1\n"
      " addsd %xmm0, %xmm1\n"
      " add $1, %eax\n sub $1, %rdi\n jge .L1\n ret\n";
  std::string independent =
      "f:\n movslq %edi, %rdi\n xor %eax, %eax\n.L1:\n"
      " addsd %xmm0, %xmm1\n"
      " addsd %xmm0, %xmm2\n"
      " addsd %xmm0, %xmm3\n"
      " addsd %xmm0, %xmm4\n"
      " add $1, %eax\n sub $1, %rdi\n jge .L1\n ret\n";
  RunResult serial = runAsm(chained, 1000, {});
  RunResult parallel = runAsm(independent, 1000, {});
  double serialPer = static_cast<double>(serial.coreCycles) / serial.iterations;
  double parallelPer =
      static_cast<double>(parallel.coreCycles) / parallel.iterations;
  EXPECT_GT(serialPer, 11.0);  // 4 x 3-cycle chain
  EXPECT_LT(parallelPer, serialPer / 2.0);
}

TEST(CoreTiming, FpDivIsExpensive) {
  std::string divs =
      "f:\n movslq %edi, %rdi\n xor %eax, %eax\n.L1:\n"
      " divsd %xmm0, %xmm1\n"
      " add $1, %eax\n sub $1, %rdi\n jge .L1\n ret\n";
  RunResult r = runAsm(divs, 500, {});
  double perIter = static_cast<double>(r.coreCycles) / r.iterations;
  EXPECT_GT(perIter, 15.0);
}

TEST(CoreTiming, UnrollingAmortizesLoopOverhead) {
  // Paper §5.1: "for the general case, unrolling is advantageous".
  // cycles per LOAD must drop monotonically-ish from u=1 to u=8 in L1.
  double first = 0, last = 0;
  for (int u : {1, 8}) {
    auto programs = microtools::testing::generate(
        microtools::testing::figure6Xml(u, u, false));
    RunResult r = runAsm(programs[0].asmText, 8000, {0x100000});
    double perLoad = static_cast<double>(r.coreCycles) /
                     static_cast<double>(r.iterations) / u;
    if (u == 1) first = perLoad;
    if (u == 8) last = perLoad;
  }
  EXPECT_LT(last, first);
}

TEST(CoreTiming, Aliasing4kPenaltyApplies) {
  // A store followed by a load 4096 bytes away on every iteration triggers
  // the MOB false-dependence penalty; offsetting the load avoids it.
  auto kernel = [](int delta) {
    return
        "f:\n movslq %edi, %rdi\n xor %eax, %eax\n.L1:\n"
        " movaps %xmm0, (%rsi)\n"
        " movaps " + std::to_string(4096 + delta) + "(%rsi), %xmm1\n"
        " add $16, %rsi\n"
        " add $1, %eax\n sub $1, %rdi\n jge .L1\n ret\n";
  };
  // Footprint (8 KiB store stream + 8 KiB load stream at +4 KiB) fits L1,
  // so the MOB penalty is the only difference between the two variants.
  MachineConfig machine = cfg();
  MemorySystem ms1(machine);
  ms1.touch(0, 0x100000, 16 * 1024);
  CoreSim core1(machine, ms1, 0);
  RunResult aliased = core1.run(asmparse::parseAssembly(kernel(0)), 500,
                                {0x100000});
  MemorySystem ms2(machine);
  ms2.touch(0, 0x100000, 16 * 1024);
  CoreSim core2(machine, ms2, 0);
  RunResult clean = core2.run(asmparse::parseAssembly(kernel(512)), 500,
                              {0x100000});
  EXPECT_GT(aliased.coreCycles, clean.coreCycles);
}

TEST(CoreTiming, TscConversionUsesFrequencyRatio) {
  MachineConfig machine = cfg();
  machine.coreGHz = machine.nominalGHz / 2.0;  // halve the core clock
  MemorySystem ms(machine);
  ms.touch(0, 0x100000, 1 << 16);
  CoreSim core(machine, ms, 0);
  RunResult r = core.run(asmparse::parseAssembly(loadKernel(4, "movss", 4)),
                         4000, {0x100000});
  EXPECT_NEAR(r.tscCycles, static_cast<double>(r.coreCycles) * 2.0, 1.0);
}

TEST(CoreTiming, ResultBeforeCompletionThrows) {
  MachineConfig machine = cfg();
  MemorySystem ms(machine);
  CoreSim core(machine, ms, 0);
  EXPECT_THROW(core.result(), McError);
}

TEST(CoreTiming, DeterministicAcrossRuns) {
  std::string k = loadKernel(6, "movss", 4);
  RunResult a = runAsm(k, 5000, {0x100000});
  RunResult b = runAsm(k, 5000, {0x100000});
  EXPECT_EQ(a.coreCycles, b.coreCycles);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(CoreTiming, MonotonicInTripCount) {
  std::string k = loadKernel(4, "movss", 4);
  std::uint64_t prev = 0;
  for (int n : {1000, 2000, 4000, 8000}) {
    RunResult r = runAsm(k, n, {0x100000});
    EXPECT_GT(r.coreCycles, prev);
    prev = r.coreCycles;
  }
}

TEST(CoreTiming, IndirectBranchRejected) {
  EXPECT_THROW(runAsm("f:\n jmp 8(%rax)\n ret\n", 0, {}), McError);
}

}  // namespace
}  // namespace microtools::sim
