// Tests of the end-to-end exploration driver: the content-addressed
// measurement cache (hit/miss/corruption/version handling), the in-memory
// creator -> campaign handoff, and the ranked top-K report.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <thread>

#include "launcher/explore.hpp"
#include "launcher/sim_backend.hpp"
#include "sim/arch.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"
#include "test_helpers.hpp"

namespace microtools::launcher {
namespace {

namespace fs = std::filesystem;

using testing::figure6Xml;

/// Per-factory invocation counters shared by every backend it builds.
struct BackendCounters {
  std::atomic<int> constructed{0};
  std::atomic<int> loads{0};
  std::atomic<int> invokes{0};
};

/// SimBackend wrapper that counts every load and invocation — the proof
/// that a fully cached rerun performs zero backend work.
class CountingBackend final : public Backend {
 public:
  explicit CountingBackend(std::shared_ptr<BackendCounters> counters)
      : counters_(std::move(counters)),
        inner_(sim::nehalemX5650DualSocket()) {
    counters_->constructed++;
  }

  std::string name() const override { return "counting-sim"; }
  std::unique_ptr<KernelHandle> load(const std::string& asmText,
                                     const std::string& fn) override {
    counters_->loads++;
    return inner_.load(asmText, fn);
  }
  InvokeResult invoke(KernelHandle& kernel,
                      const KernelRequest& request) override {
    counters_->invokes++;
    return inner_.invoke(kernel, request);
  }
  double timerOverheadCycles() const override {
    return inner_.timerOverheadCycles();
  }
  std::vector<InvokeResult> invokeFork(KernelHandle& kernel,
                                       const KernelRequest& request,
                                       int processes, int calls,
                                       PinPolicy policy) override {
    return inner_.invokeFork(kernel, request, processes, calls, policy);
  }
  InvokeResult invokeOpenMp(KernelHandle& kernel,
                            const KernelRequest& request, int threads,
                            int repetitions) override {
    return inner_.invokeOpenMp(kernel, request, threads, repetitions);
  }
  void reset() override { inner_.reset(); }

 private:
  std::shared_ptr<BackendCounters> counters_;
  SimBackend inner_;
};

std::string freshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  return dir;
}

ExploreOptions baseOptions(const std::string& cacheDir,
                           std::shared_ptr<BackendCounters> counters) {
  ExploreOptions options;
  options.descriptionText = figure6Xml(1, 2, false);
  options.arrayBytes = 16 * 1024;
  options.campaign.jobs = 2;
  options.campaign.protocol.innerRepetitions = 1;
  options.campaign.protocol.outerRepetitions = 3;
  options.campaign.maxCv = 0.05;
  options.campaign.maxRepetitions = 10;
  options.cacheDir = cacheDir;
  options.backendFactory = [counters](int) {
    return std::make_unique<CountingBackend>(counters);
  };
  options.backendId = "counting-sim";
  return options;
}

VariantResult okResult(const std::string& name, double min) {
  VariantResult r;
  r.name = name;
  r.status = "ok";
  r.measurement.iterationsPerCall = 257;
  r.measurement.totalCycles = 1000.0;
  r.measurement.cyclesPerIteration =
      stats::Summary{3, min, min + 0.5, min + 0.2, min + 0.1, 0.05, 0.02};
  r.repetitions = 3;
  r.finalCv = 0.02;
  r.converged = true;
  r.attempts = 1;
  return r;
}

// ---------------------------------------------------------------------------
// Cache key
// ---------------------------------------------------------------------------

TEST(CacheKey, StableForIdenticalInputs) {
  CampaignVariant v{"a", "asm", ".text\nret\n", "microkernel", ""};
  CampaignOptions options;
  KernelRequest request;
  request.n = 100;
  request.arrays.push_back(ArraySpec{1024, 64, 0});
  std::string k1 = cacheKey(v, options, "sim:nehalem", request);
  std::string k2 = cacheKey(v, options, "sim:nehalem", request);
  EXPECT_EQ(k1, k2);
  EXPECT_EQ(k1.size(), 16u);
}

TEST(CacheKey, SensitiveToEveryMeasurementInput) {
  CampaignVariant v{"a", "asm", ".text\nret\n", "microkernel", ""};
  CampaignOptions options;
  KernelRequest request;
  request.n = 100;
  request.arrays.push_back(ArraySpec{1024, 64, 0});
  std::string base = cacheKey(v, options, "sim:nehalem", request);

  CampaignVariant v2 = v;
  v2.source = ".text\nnop\nret\n";
  EXPECT_NE(cacheKey(v2, options, "sim:nehalem", request), base);

  CampaignVariant v3 = v;
  v3.functionName = "other";
  EXPECT_NE(cacheKey(v3, options, "sim:nehalem", request), base);

  CampaignOptions o2 = options;
  o2.protocol.outerRepetitions += 1;
  EXPECT_NE(cacheKey(v, o2, "sim:nehalem", request), base);

  CampaignOptions o3 = options;
  o3.maxCv = 0.5;
  EXPECT_NE(cacheKey(v, o3, "sim:nehalem", request), base);

  EXPECT_NE(cacheKey(v, options, "sim:sandy_bridge", request), base);

  KernelRequest r2 = request;
  r2.n = 200;
  EXPECT_NE(cacheKey(v, options, "sim:nehalem", r2), base);

  KernelRequest r3 = request;
  r3.arrays[0].offset = 16;
  EXPECT_NE(cacheKey(v, options, "sim:nehalem", r3), base);
}

TEST(CacheKey, IgnoresWorkerCoreAndVariantName) {
  CampaignVariant v{"a", "asm", ".text\nret\n", "microkernel", ""};
  CampaignOptions options;
  KernelRequest request;
  request.n = 100;
  std::string base = cacheKey(v, options, "sim:nehalem", request);

  // Per-worker pinning must not fragment the cache.
  KernelRequest pinned = request;
  pinned.core = 3;
  EXPECT_EQ(cacheKey(v, options, "sim:nehalem", pinned), base);

  // Identity is the content, not the label.
  CampaignVariant renamed = v;
  renamed.name = "renamed";
  EXPECT_EQ(cacheKey(renamed, options, "sim:nehalem", request), base);
}

// ---------------------------------------------------------------------------
// MeasurementCache
// ---------------------------------------------------------------------------

TEST(MeasurementCache, StoreThenLoadRoundTrips) {
  MeasurementCache cache(freshDir("mtcache_roundtrip"));
  VariantResult r = okResult("variant_a", 2.0);
  r.note = "multi\nline \\ note";
  cache.store("00000000000000aa", r);

  std::optional<VariantResult> loaded = cache.load("00000000000000aa");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->name, r.name);
  EXPECT_EQ(loaded->status, "ok");
  EXPECT_EQ(loaded->note, r.note);
  EXPECT_EQ(loaded->measurement.iterationsPerCall, 257u);
  EXPECT_DOUBLE_EQ(loaded->measurement.cyclesPerIteration.min, 2.0);
  EXPECT_DOUBLE_EQ(loaded->measurement.cyclesPerIteration.max, 2.5);
  EXPECT_DOUBLE_EQ(loaded->measurement.cyclesPerIteration.mean, 2.2);
  EXPECT_DOUBLE_EQ(loaded->measurement.cyclesPerIteration.median, 2.1);
  EXPECT_DOUBLE_EQ(loaded->finalCv, 0.02);
  EXPECT_EQ(loaded->repetitions, 3);
  EXPECT_TRUE(loaded->converged);
  fs::remove_all(cache.dir());
}

TEST(MeasurementCache, MissOnAbsentKey) {
  MeasurementCache cache(freshDir("mtcache_absent"));
  EXPECT_FALSE(cache.load("00000000000000bb").has_value());
  fs::remove_all(cache.dir());
}

TEST(MeasurementCache, MissOnCorruptFile) {
  std::string dir = freshDir("mtcache_corrupt");
  {
    MeasurementCache cache(dir);
    cache.store("00000000000000cc", okResult("v", 1.0));
    std::ofstream(cache.recordPath("00000000000000cc"), std::ios::trunc)
        << "random garbage\nnot a record";
    // Truncated numeric field is also a miss, not an exception.
    std::ofstream(cache.recordPath("00000000000000cd"), std::ios::trunc)
        << "microtools-cache 1\nkey 00000000000000cd\nname v\nstatus ok\n"
           "iterations_per_call twelve\n";
  }
  // Damage lands on disk after the first open; a fresh open indexes the
  // damaged files and every load is a counted miss, never an exception.
  MeasurementCache reopened(dir);
  EXPECT_FALSE(reopened.load("00000000000000cc").has_value());
  EXPECT_FALSE(reopened.load("00000000000000cd").has_value());
  EXPECT_EQ(reopened.telemetry().corrupt, 2u);
  EXPECT_EQ(reopened.telemetry().misses, 2u);
  fs::remove_all(dir);
}

TEST(MeasurementCache, MissOnVersionMismatch) {
  std::string dir = freshDir("mtcache_version");
  {
    MeasurementCache cache(dir);
    cache.store("00000000000000dd", okResult("v", 1.0));
    ASSERT_TRUE(cache.load("00000000000000dd").has_value());

    // Rewrite the record with a bumped format version.
    std::ifstream in(cache.recordPath("00000000000000dd"));
    std::stringstream buf;
    buf << in.rdbuf();
    std::string text = strings::replaceAll(buf.str(), "microtools-cache 1",
                                           "microtools-cache 999");
    std::ofstream(cache.recordPath("00000000000000dd"), std::ios::trunc)
        << text;
  }
  MeasurementCache reopened(dir);
  EXPECT_FALSE(reopened.load("00000000000000dd").has_value());
  fs::remove_all(dir);
}

TEST(MeasurementCache, MissOnKeyMismatch) {
  std::string dir = freshDir("mtcache_keymismatch");
  {
    MeasurementCache cache(dir);
    cache.store("00000000000000ee", okResult("v", 1.0));
    // A hand-copied record file must not satisfy a different key.
    fs::copy_file(cache.recordPath("00000000000000ee"),
                  cache.recordPath("00000000000000ef"));
  }
  MeasurementCache reopened(dir);
  EXPECT_FALSE(reopened.load("00000000000000ef").has_value());
  EXPECT_TRUE(reopened.load("00000000000000ee").has_value());
  fs::remove_all(dir);
}

TEST(MeasurementCache, StoreTempFileIsUniquePerProcess) {
  MeasurementCache cache(freshDir("mtcache_tmpsuffix"));
  std::string key = "00000000000000a1";
  // A second process writing the same key would have started its own
  // counter at 0; before the pid went into the suffix both writers used
  // "<record>.tmp0" and one could publish the other's half-written file.
  // Simulate that foreign in-flight temp file and store over it: ours must
  // get a different name, leave the foreign file untouched, and still
  // publish a valid record.
  std::string foreignTmp = cache.recordPath(key) + ".tmp0";
  fs::create_directories(fs::path(foreignTmp).parent_path());
  std::ofstream(foreignTmp, std::ios::binary) << "half-written by pid 12345";
  cache.store(key, okResult("variant_a", 2.0));

  std::ifstream foreign(foreignTmp, std::ios::binary);
  ASSERT_TRUE(foreign.good());
  std::stringstream buf;
  buf << foreign.rdbuf();
  EXPECT_EQ(buf.str(), "half-written by pid 12345");

  std::optional<VariantResult> loaded = cache.load(key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->name, "variant_a");

  // Concurrent stores under one key from this process also never share a
  // temp file: every record stays loadable, and no stray temp survives a
  // rename (each writer renames its own file).
  std::vector<std::thread> writers;
  for (int t = 0; t < 8; ++t) {
    writers.emplace_back([&cache, &key] {
      for (int i = 0; i < 25; ++i) {
        cache.store(key, okResult("variant_a", 2.0));
      }
    });
  }
  for (std::thread& t : writers) t.join();
  loaded = cache.load(key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->status, "ok");
  fs::remove_all(cache.dir());
}

TEST(MeasurementCache, DoesNotStoreFailedResults) {
  MeasurementCache cache(freshDir("mtcache_failed"));
  VariantResult r = okResult("v", 1.0);
  r.status = "error";
  r.error = "backend exploded";
  cache.store("00000000000000ff", r);
  EXPECT_FALSE(fs::exists(cache.recordPath("00000000000000ff")));
  EXPECT_FALSE(cache.load("00000000000000ff").has_value());
  fs::remove_all(cache.dir());
}

TEST(MeasurementCache, RecordsAreShardedByKeyPrefix) {
  std::string dir = freshDir("mtcache_shards");
  MeasurementCache cache(dir);
  std::string key = "ab12cd34ef567890";
  cache.store(key, okResult("v", 1.0));
  // Two levels of key-prefix directories keep fleet-scale caches from
  // accumulating millions of siblings in one directory.
  fs::path expected = fs::path(dir) / "ab" / "12" / (key + ".mtres");
  EXPECT_EQ(cache.recordPath(key), expected.string());
  EXPECT_TRUE(fs::exists(expected));
  // Short keys (tests, hand-written) fall into "_" buckets that hex
  // digests can never occupy.
  EXPECT_EQ(cache.recordPath("a"),
            (fs::path(dir) / "_" / "_" / "a.mtres").string());
  fs::remove_all(dir);
}

TEST(MeasurementCache, MigratesFlatLegacyRecordsAtOpen) {
  // Records written by the pre-shard cache lived flat in the root. A new
  // open moves them into their shard and serves them from the index.
  std::string dir = freshDir("mtcache_legacy");
  fs::create_directories(dir);
  std::string key = "00000000000000a7";
  VariantResult r = okResult("legacy_variant", 3.0);
  std::ofstream(fs::path(dir) / (key + ".mtres"), std::ios::binary)
      << MeasurementCache::serialize(key, r);

  MeasurementCache cache(dir);
  std::optional<VariantResult> loaded = cache.load(key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->name, "legacy_variant");
  EXPECT_FALSE(fs::exists(fs::path(dir) / (key + ".mtres")));
  EXPECT_TRUE(fs::exists(cache.recordPath(key)));
  fs::remove_all(dir);
}

TEST(MeasurementCache, WarmReopenServesLoadsWithZeroRecordFileOpens) {
  std::string dir = freshDir("mtcache_zeroopen");
  std::vector<std::string> keys;
  {
    MeasurementCache cache(dir);
    for (int i = 0; i < 8; ++i) {
      std::string key = strings::format("%016x", 0xb0 + i);
      keys.push_back(key);
      cache.store(key, okResult("v" + std::to_string(i), 1.0 + i));
    }
  }
  // The journal holds every record, so the reopen scan trusts it and the
  // warm run never opens a single per-record file.
  MeasurementCache cache(dir);
  EXPECT_EQ(cache.telemetry().recordFileReads, 0u);
  for (const std::string& key : keys) {
    ASSERT_TRUE(cache.load(key).has_value()) << key;
  }
  CacheTelemetry t = cache.telemetry();
  EXPECT_EQ(t.recordFileReads, 0u);
  EXPECT_EQ(t.hits, keys.size());
  EXPECT_EQ(t.misses, 0u);
  fs::remove_all(dir);
}

TEST(MeasurementCache, TwoProcessesAppendOneIntactJournal) {
  // Two writer processes hammer the same cache directory; the flock around
  // each index.pack append must keep every journal record whole. If appends
  // interleaved mid-record the reopen would fall back to per-record file
  // reads (or drop entries), so the assertions below pin both: every key
  // loads AND the warm reopen never touches a record file.
  std::string dir = freshDir("mtcache_flock");
  constexpr int kKeysPerChild = 200;
  std::vector<pid_t> children;
  for (int child = 0; child < 2; ++child) {
    pid_t pid = fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) {
      // Child: its own MeasurementCache handle over the shared directory.
      // A large note pushes each journal record across one write's worth
      // of internal buffering so torn appends would actually interleave.
      MeasurementCache cache(dir);
      std::string padding(4096, 'a' + static_cast<char>(child));
      for (int i = 0; i < kKeysPerChild; ++i) {
        VariantResult r =
            okResult("c" + std::to_string(child) + "_v" + std::to_string(i),
                     1.0 + i);
        r.note = padding;
        cache.store(strings::format("%08x%08x", child, i), r);
      }
      std::_Exit(0);  // no gtest teardown in the child
    }
    children.push_back(pid);
  }
  for (pid_t pid : children) {
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "writer child failed";
  }

  MeasurementCache reopened(dir);
  for (int child = 0; child < 2; ++child) {
    for (int i = 0; i < kKeysPerChild; ++i) {
      std::string key = strings::format("%08x%08x", child, i);
      std::optional<VariantResult> loaded = reopened.load(key);
      ASSERT_TRUE(loaded.has_value()) << key;
      EXPECT_EQ(loaded->name,
                "c" + std::to_string(child) + "_v" + std::to_string(i));
    }
  }
  CacheTelemetry t = reopened.telemetry();
  EXPECT_EQ(t.recordFileReads, 0u) << "a torn journal forced record reads";
  EXPECT_EQ(t.hits, static_cast<std::uint64_t>(2 * kKeysPerChild));
  EXPECT_EQ(t.misses, 0u);
  fs::remove_all(dir);
}

TEST(MeasurementCache, MissingPackEntryRereadsTheFileOnceAndRejournals) {
  std::string dir = freshDir("mtcache_repack");
  std::string key = "00000000000000c9";
  {
    MeasurementCache cache(dir);
    cache.store(key, okResult("v", 2.0));
  }
  fs::remove(fs::path(dir) / "index.pack");

  {
    // Without the journal the open falls back to reading the record file —
    // exactly once — and writes the journal back.
    MeasurementCache cache(dir);
    EXPECT_EQ(cache.telemetry().recordFileReads, 1u);
    ASSERT_TRUE(cache.load(key).has_value());
  }
  // The re-journaled pack is trusted again on the next open.
  MeasurementCache cache(dir);
  EXPECT_EQ(cache.telemetry().recordFileReads, 0u);
  ASSERT_TRUE(cache.load(key).has_value());
  fs::remove_all(dir);
}

TEST(MeasurementCache, TornPackTailFallsBackToTheRecordFiles) {
  std::string dir = freshDir("mtcache_tornpack");
  std::string key = "00000000000000ca";
  {
    MeasurementCache cache(dir);
    cache.store(key, okResult("v", 2.0));
  }
  // Simulate a crash mid-append: truncate the journal inside the payload.
  fs::path pack = fs::path(dir) / "index.pack";
  std::uintmax_t size = fs::file_size(pack);
  fs::resize_file(pack, size / 2);

  MeasurementCache cache(dir);
  EXPECT_EQ(cache.telemetry().recordFileReads, 1u);
  std::optional<VariantResult> loaded = cache.load(key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->name, "v");
  fs::remove_all(dir);
}

TEST(MeasurementCache, TelemetryCountsHitsMissesAndCorruption) {
  std::string dir = freshDir("mtcache_telemetry");
  {
    MeasurementCache cache(dir);
    cache.store("00000000000000e1", okResult("good", 1.0));
    std::ofstream(cache.recordPath("00000000000000e2"), std::ios::trunc)
        << "not a record";
  }
  MeasurementCache cache(dir);
  EXPECT_TRUE(cache.load("00000000000000e1").has_value());
  EXPECT_TRUE(cache.load("00000000000000e1").has_value());
  EXPECT_FALSE(cache.load("00000000000000e2").has_value());  // corrupt
  EXPECT_FALSE(cache.load("00000000000000e3").has_value());  // absent
  CacheTelemetry t = cache.telemetry();
  EXPECT_EQ(t.hits, 2u);
  EXPECT_EQ(t.misses, 2u);  // corrupt records count in both columns
  EXPECT_EQ(t.corrupt, 1u);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// End-to-end exploration (the acceptance bar)
// ---------------------------------------------------------------------------

TEST(Explore, SecondRunIsFullyCachedWithZeroBackendInvocations) {
  std::string cacheDir = freshDir("explore_cache_accept");

  auto first = std::make_shared<BackendCounters>();
  ExploreResult cold = runExplore(baseOptions(cacheDir, first));
  ASSERT_GE(cold.results.size(), 2u);
  EXPECT_EQ(cold.generated, cold.results.size());
  EXPECT_EQ(cold.cacheHits, 0u);
  EXPECT_EQ(cold.measured, cold.results.size());
  EXPECT_GT(first->invokes.load(), 0);
  for (const VariantResult& r : cold.results) {
    EXPECT_EQ(r.status, "ok") << r.error;
    EXPECT_FALSE(r.cached);
  }

  auto second = std::make_shared<BackendCounters>();
  ExploreResult warm = runExplore(baseOptions(cacheDir, second));
  ASSERT_EQ(warm.results.size(), cold.results.size());
  EXPECT_EQ(warm.cacheHits, warm.results.size()) << "expected 100% hits";
  EXPECT_EQ(warm.measured, 0u);
  // The whole point: a fully cached rerun performs ZERO backend work —
  // not even a backend is constructed.
  EXPECT_EQ(second->constructed.load(), 0);
  EXPECT_EQ(second->loads.load(), 0);
  EXPECT_EQ(second->invokes.load(), 0);

  for (std::size_t i = 0; i < warm.results.size(); ++i) {
    const VariantResult& a = cold.results[i];
    const VariantResult& b = warm.results[i];
    EXPECT_TRUE(b.cached);
    EXPECT_EQ(b.sequence, a.sequence);
    EXPECT_EQ(b.name, a.name);
    EXPECT_EQ(b.status, "ok");
    EXPECT_DOUBLE_EQ(b.measurement.cyclesPerIteration.min,
                     a.measurement.cyclesPerIteration.min);
    EXPECT_DOUBLE_EQ(b.measurement.cyclesPerIteration.mean,
                     a.measurement.cyclesPerIteration.mean);
    EXPECT_EQ(b.measurement.iterationsPerCall, a.measurement.iterationsPerCall);
    EXPECT_EQ(b.repetitions, a.repetitions);
    EXPECT_EQ(b.converged, a.converged);
  }
  fs::remove_all(cacheDir);
}

TEST(Explore, ProtocolChangeInvalidatesCache) {
  std::string cacheDir = freshDir("explore_cache_proto");
  auto counters = std::make_shared<BackendCounters>();
  runExplore(baseOptions(cacheDir, counters));

  auto recount = std::make_shared<BackendCounters>();
  ExploreOptions changed = baseOptions(cacheDir, recount);
  changed.campaign.protocol.outerRepetitions += 1;  // different measurement
  ExploreResult result = runExplore(changed);
  EXPECT_EQ(result.cacheHits, 0u);
  EXPECT_EQ(result.measured, result.results.size());
  EXPECT_GT(recount->invokes.load(), 0);
  fs::remove_all(cacheDir);
}

TEST(Explore, InMemoryHandoffNeedsNoFilesystemRoundTrip) {
  auto counters = std::make_shared<BackendCounters>();
  ExploreOptions options = baseOptions(freshDir("explore_nocache"), counters);
  options.useCache = false;

  ExploreResult result = runExplore(options);
  ASSERT_GE(result.results.size(), 2u);
  EXPECT_EQ(result.cacheHits, 0u);
  EXPECT_EQ(result.measured, result.results.size());
  // The array count was derived from the generated programs.
  ASSERT_FALSE(result.request.arrays.empty());
  EXPECT_GT(result.request.n, 0);
  for (const VariantResult& r : result.results) {
    EXPECT_EQ(r.status, "ok") << r.error;
  }
  // No cache directory was created when the cache is off.
  EXPECT_FALSE(fs::exists(options.cacheDir));
}

TEST(Explore, StreamsCampaignRowsWithCachedColumn) {
  std::string cacheDir = freshDir("explore_stream");
  auto counters = std::make_shared<BackendCounters>();

  std::ostringstream cold;
  {
    CampaignCsvSink sink(cold);
    runExplore(baseOptions(cacheDir, counters), &sink);
  }
  std::ostringstream warm;
  {
    CampaignCsvSink sink(warm);
    runExplore(baseOptions(cacheDir, counters), &sink);
  }
  std::istringstream in(warm.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find(",cached,"), std::string::npos) << line;
  std::vector<std::string> header = csv::parseLine(line);
  std::size_t cachedCol = 0;
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == "cached") cachedCol = i;
  }
  int rows = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++rows;
    std::vector<std::string> cells = csv::parseLine(line);
    ASSERT_GT(cells.size(), cachedCol);
    EXPECT_EQ(cells[cachedCol], "1") << "warm row not served from cache";
  }
  EXPECT_GE(rows, 2);
  fs::remove_all(cacheDir);
}

TEST(Explore, StreamedColdRunMatchesBatchResults) {
  auto a = std::make_shared<BackendCounters>();
  ExploreOptions batch = baseOptions(freshDir("explore_stream_batch"), a);
  batch.useCache = false;
  ExploreResult reference = runExplore(batch);
  ASSERT_GE(reference.results.size(), 2u);

  auto b = std::make_shared<BackendCounters>();
  ExploreOptions streamed = baseOptions(freshDir("explore_stream_cold"), b);
  streamed.useCache = false;
  streamed.stream = true;
  ExploreResult result = runExplore(streamed);

  // Streaming reorders nothing: variants arrive in emission order, so rows,
  // sequences and (deterministic-sim) measurements are bit-identical.
  EXPECT_EQ(result.generated, reference.generated);
  ASSERT_EQ(result.results.size(), reference.results.size());
  EXPECT_EQ(result.request.arrays.size(), reference.request.arrays.size());
  for (std::size_t i = 0; i < result.results.size(); ++i) {
    const VariantResult& x = reference.results[i];
    const VariantResult& y = result.results[i];
    EXPECT_EQ(y.sequence, x.sequence);
    EXPECT_EQ(y.name, x.name);
    EXPECT_EQ(y.status, "ok") << y.error;
    EXPECT_DOUBLE_EQ(y.measurement.cyclesPerIteration.min,
                     x.measurement.cyclesPerIteration.min);
    EXPECT_DOUBLE_EQ(y.measurement.cyclesPerIteration.mean,
                     x.measurement.cyclesPerIteration.mean);
    EXPECT_EQ(y.measurement.iterationsPerCall, x.measurement.iterationsPerCall);
  }
}

TEST(Explore, StreamedWarmRunIsFullyCachedWithZeroFileOpens) {
  std::string cacheDir = freshDir("explore_stream_warm");
  auto cold = std::make_shared<BackendCounters>();
  ExploreOptions coldOptions = baseOptions(cacheDir, cold);
  coldOptions.stream = true;
  ExploreResult first = runExplore(coldOptions);
  ASSERT_GE(first.results.size(), 2u);
  EXPECT_EQ(first.measured, first.results.size());
  EXPECT_EQ(first.cacheTelemetry.misses, first.results.size());

  auto warm = std::make_shared<BackendCounters>();
  ExploreOptions warmOptions = baseOptions(cacheDir, warm);
  warmOptions.stream = true;
  ExploreResult second = runExplore(warmOptions);
  EXPECT_EQ(second.cacheHits, second.results.size());
  EXPECT_EQ(second.measured, 0u);
  // A fully cached stream constructs zero backends...
  EXPECT_EQ(warm->constructed.load(), 0);
  EXPECT_EQ(warm->invokes.load(), 0);
  // ...and the indexed cache serves every probe from memory: the whole warm
  // run opens zero per-variant record files (the acceptance assertion).
  EXPECT_EQ(second.cacheTelemetry.hits, second.results.size());
  EXPECT_EQ(second.cacheTelemetry.misses, 0u);
  EXPECT_EQ(second.cacheTelemetry.recordFileReads, 0u);
  fs::remove_all(cacheDir);
}

TEST(Explore, StreamedAndBatchRunsShareCacheEntries) {
  // The streaming path derives nbVectors pre-verification, the batch path
  // post-verification; for a description where nothing is rejected the
  // request — and therefore every cache key — must agree, so a batch-cold /
  // stream-warm pair hits 100%.
  std::string cacheDir = freshDir("explore_stream_share");
  auto cold = std::make_shared<BackendCounters>();
  runExplore(baseOptions(cacheDir, cold));

  auto warm = std::make_shared<BackendCounters>();
  ExploreOptions streamed = baseOptions(cacheDir, warm);
  streamed.stream = true;
  ExploreResult result = runExplore(streamed);
  EXPECT_EQ(result.cacheHits, result.results.size());
  EXPECT_EQ(warm->constructed.load(), 0);
  fs::remove_all(cacheDir);
}

TEST(Explore, StreamRejectsHalvingSearch) {
  auto counters = std::make_shared<BackendCounters>();
  ExploreOptions options = baseOptions(freshDir("explore_stream_halving"),
                                       counters);
  options.stream = true;
  options.search = SearchMode::Halving;
  EXPECT_THROW(runExplore(options), McError);
}

TEST(Explore, GenerateJobsLeaveResultsBitIdentical) {
  auto a = std::make_shared<BackendCounters>();
  ExploreOptions serial = baseOptions(freshDir("explore_jobs1"), a);
  serial.useCache = false;
  serial.descriptionText = figure6Xml(1, 4, true);
  ExploreResult reference = runExplore(serial);

  auto b = std::make_shared<BackendCounters>();
  ExploreOptions parallel = baseOptions(freshDir("explore_jobs4"), b);
  parallel.useCache = false;
  parallel.descriptionText = figure6Xml(1, 4, true);
  parallel.generateJobs = 4;
  ExploreResult result = runExplore(parallel);

  ASSERT_EQ(result.results.size(), reference.results.size());
  for (std::size_t i = 0; i < result.results.size(); ++i) {
    EXPECT_EQ(result.results[i].name, reference.results[i].name);
    EXPECT_DOUBLE_EQ(result.results[i].measurement.cyclesPerIteration.min,
                     reference.results[i].measurement.cyclesPerIteration.min);
  }
}

TEST(Explore, MaxVariantsAndSeedOverridesApply) {
  auto counters = std::make_shared<BackendCounters>();
  ExploreOptions options = baseOptions(freshDir("explore_max"), counters);
  options.useCache = false;
  options.descriptionText = figure6Xml(1, 8, false);
  options.maxVariants = 3;
  ExploreResult result = runExplore(options);
  EXPECT_EQ(result.results.size(), 3u);
}

TEST(Explore, RejectsEmptyGeneration) {
  ExploreOptions options;
  options.descriptionText = "<description></description>";
  options.useCache = false;
  EXPECT_THROW(runExplore(options), McError);
}

// ---------------------------------------------------------------------------
// Ranked report
// ---------------------------------------------------------------------------

TEST(TopKReport, RanksOkResultsByMinCyclesAndClampsK) {
  std::vector<VariantResult> results;
  results.push_back(okResult("slow", 9.0));
  results.push_back(okResult("fast", 1.0));
  results.push_back(okResult("mid", 4.0));
  VariantResult failed = okResult("broken", 0.5);
  failed.status = "error";
  results.push_back(failed);
  results[1].cached = true;

  csv::Table top2 = topKReport(results, 2);
  ASSERT_EQ(top2.rowCount(), 2u);
  EXPECT_EQ(top2.row(0)[1], "fast");
  EXPECT_EQ(top2.row(0)[0], "1");
  EXPECT_EQ(top2.row(0)[7], "1");  // cached column
  EXPECT_EQ(top2.row(1)[1], "mid");

  // k <= 0 ranks everything that succeeded; the error row never appears.
  csv::Table all = topKReport(results, 0);
  EXPECT_EQ(all.rowCount(), 3u);
  EXPECT_EQ(all.row(2)[1], "slow");

  csv::Table large = topKReport(results, 100);
  EXPECT_EQ(large.rowCount(), 3u);
}

TEST(TopKReport, NanMeasurementsRankLastWithoutBreakingTheSort) {
  // Overhead-clamped measurements can legitimately produce NaN min/mean.
  // The old comparator (`am != bm ? am < bm : ...`) was not a strict weak
  // order once NaN appeared — UB in std::stable_sort that corrupted the
  // ranking. Enough rows to give a broken sort room to misbehave:
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  std::vector<VariantResult> results;
  for (int i = 0; i < 16; ++i) {
    results.push_back(okResult("v" + std::to_string(i), 16.0 - i));
    VariantResult undefined = okResult("nan" + std::to_string(i), 1.0);
    undefined.measurement.cyclesPerIteration.min = kNan;
    undefined.measurement.cyclesPerIteration.mean = kNan;
    results.push_back(undefined);
  }

  csv::Table all = topKReport(results, 0);
  ASSERT_EQ(all.rowCount(), 32u);
  // Numbers first, ascending; every NaN row after every measured one.
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(all.row(i)[1], "v" + std::to_string(15 - i)) << "rank " << i;
  }
  for (std::size_t i = 16; i < 32; ++i) {
    EXPECT_TRUE(strings::startsWith(all.row(i)[1], "nan")) << "rank " << i;
  }
  // NaN-only ties fall back to the name ordering: deterministic output.
  EXPECT_EQ(all.row(16)[1], "nan0");

  // A NaN min with a measured mean still ranks after every finite min but
  // uses the mean against other NaN-min rows.
  VariantResult mixedA = okResult("mixed_a", 1.0);
  mixedA.measurement.cyclesPerIteration.min = kNan;
  mixedA.measurement.cyclesPerIteration.mean = 2.0;
  VariantResult mixedB = okResult("mixed_b", 1.0);
  mixedB.measurement.cyclesPerIteration.min = kNan;
  mixedB.measurement.cyclesPerIteration.mean = 9.0;
  csv::Table mixed = topKReport({okResult("solid", 5.0), mixedB, mixedA}, 0);
  ASSERT_EQ(mixed.rowCount(), 3u);
  EXPECT_EQ(mixed.row(0)[1], "solid");
  EXPECT_EQ(mixed.row(1)[1], "mixed_a");
  EXPECT_EQ(mixed.row(2)[1], "mixed_b");
}

}  // namespace
}  // namespace microtools::launcher
