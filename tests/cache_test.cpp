#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/cache.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace microtools::sim {
namespace {

TEST(Cache, MissThenHit) {
  CacheLevel cache(1024, 2, 64);
  EXPECT_FALSE(cache.lookup(1));
  cache.insert(1);
  EXPECT_TRUE(cache.lookup(1));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(Cache, GeometryValidation) {
  EXPECT_THROW(CacheLevel(1000, 2, 64), McError);   // not a multiple
  EXPECT_THROW(CacheLevel(1024, 0, 64), McError);   // zero ways
  EXPECT_THROW(CacheLevel(1024, 2, 60), McError);   // line not pow2
  CacheLevel ok(12 * 1024 * 1024, 16, 64);          // non-pow2 sets allowed
  EXPECT_EQ(ok.sets(), 12288u);
}

TEST(Cache, ContainsDoesNotTouchLru) {
  // 2-way, single set: A, B fill the set; touching A via contains() must
  // NOT refresh it, so inserting C still evicts A (the LRU victim).
  CacheLevel cache(128, 2, 64);
  ASSERT_EQ(cache.sets(), 1u);
  cache.insert(10);
  cache.insert(20);
  EXPECT_TRUE(cache.contains(10));
  std::uint64_t evicted = cache.insert(30);
  EXPECT_EQ(evicted, 10u);
}

TEST(Cache, LookupRefreshesLru) {
  CacheLevel cache(128, 2, 64);
  cache.insert(10);
  cache.insert(20);
  EXPECT_TRUE(cache.lookup(10));  // refresh 10; 20 becomes LRU
  std::uint64_t evicted = cache.insert(30);
  EXPECT_EQ(evicted, 20u);
  EXPECT_TRUE(cache.contains(10));
  EXPECT_FALSE(cache.contains(20));
}

TEST(Cache, InsertExistingRefreshesWithoutEviction) {
  CacheLevel cache(128, 2, 64);
  cache.insert(10);
  cache.insert(20);
  EXPECT_EQ(cache.insert(10), CacheLevel::kNoEviction);  // refresh
  EXPECT_EQ(cache.insert(30), 20u);
}

TEST(Cache, SetIndexingSeparatesSets) {
  // 2 sets, 1 way: even lines -> set 0, odd lines -> set 1.
  CacheLevel cache(128, 1, 64);
  ASSERT_EQ(cache.sets(), 2u);
  cache.insert(2);
  cache.insert(3);
  EXPECT_TRUE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
  cache.insert(4);  // evicts 2 (same set), not 3
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
}

TEST(Cache, Invalidate) {
  CacheLevel cache(1024, 2, 64);
  cache.insert(5);
  EXPECT_TRUE(cache.invalidate(5));
  EXPECT_FALSE(cache.contains(5));
  EXPECT_FALSE(cache.invalidate(5));
}

TEST(Cache, ClearResetsEverything) {
  CacheLevel cache(1024, 2, 64);
  cache.insert(1);
  cache.lookup(1);
  cache.lookup(2);
  cache.clear();
  EXPECT_FALSE(cache.contains(1));
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(Cache, EvictionReportsCorrectLineAddress) {
  CacheLevel cache(4096, 4, 64);  // 16 sets
  std::uint64_t sets = cache.sets();
  // Fill one set with 4 lines, then overflow it.
  for (std::uint64_t i = 0; i < 4; ++i) cache.insert(3 + i * sets);
  std::uint64_t evicted = cache.insert(3 + 4 * sets);
  EXPECT_EQ(evicted, 3u);  // the first inserted (LRU) line, full address
}

TEST(Cache, WorkingSetSmallerThanCacheNeverEvicts) {
  CacheLevel cache(32 * 1024, 8, 64);  // 512 lines
  for (std::uint64_t pass = 0; pass < 3; ++pass) {
    for (std::uint64_t line = 0; line < 512; ++line) {
      if (!cache.lookup(line)) cache.insert(line);
    }
  }
  // First pass misses everything, later passes hit everything.
  EXPECT_EQ(cache.misses(), 512u);
  EXPECT_EQ(cache.hits(), 2u * 512u);
}

TEST(Cache, WorkingSetLargerThanCacheThrashesWithLru) {
  // Classic LRU pathology: cyclic access to W+1 lines in a W-line set
  // misses every time.
  CacheLevel cache(256, 4, 64);  // one set of 4 ways
  ASSERT_EQ(cache.sets(), 1u);
  for (int pass = 0; pass < 4; ++pass) {
    for (std::uint64_t line = 0; line < 5; ++line) {
      if (!cache.lookup(line)) cache.insert(line);
    }
  }
  EXPECT_EQ(cache.hits(), 0u);
}

// Property sweep over several geometries: inserted lines are found until
// capacity forces eviction, and the eviction count is exact.
struct Geometry {
  std::uint64_t size;
  int ways;
};

class CacheGeometry : public ::testing::TestWithParam<Geometry> {};

TEST_P(CacheGeometry, CapacityIsExact) {
  const auto [size, ways] = GetParam();
  CacheLevel cache(size, ways, 64);
  std::uint64_t capacity = size / 64;
  int evictions = 0;
  // Insert exactly `capacity` distinct lines spread uniformly over sets:
  // line numbers 0..capacity-1 map round-robin to sets, filling all ways.
  for (std::uint64_t line = 0; line < capacity; ++line) {
    if (cache.insert(line) != CacheLevel::kNoEviction) ++evictions;
  }
  EXPECT_EQ(evictions, 0);
  for (std::uint64_t line = 0; line < capacity; ++line) {
    EXPECT_TRUE(cache.contains(line)) << line;
  }
  // One more line per set now evicts.
  EXPECT_NE(cache.insert(capacity), CacheLevel::kNoEviction);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(Geometry{1024, 1}, Geometry{1024, 2},
                      Geometry{4096, 4}, Geometry{32 * 1024, 8},
                      Geometry{256 * 1024, 8}, Geometry{192 * 1024, 12}));

TEST(Cache, RandomizedLruMatchesReferenceModel) {
  // Cross-check against a simple reference LRU implementation.
  CacheLevel cache(512, 4, 64);  // 2 sets x 4 ways
  std::uint64_t sets = cache.sets();
  std::vector<std::vector<std::uint64_t>> reference(sets);
  Rng rng(123);
  for (int step = 0; step < 5000; ++step) {
    std::uint64_t line = rng.nextBelow(32);
    std::uint64_t set = line % sets;
    auto& list = reference[set];  // front = MRU
    auto it = std::find(list.begin(), list.end(), line);
    bool refHit = it != list.end();
    bool simHit = cache.lookup(line);
    ASSERT_EQ(simHit, refHit) << "step " << step << " line " << line;
    if (refHit) {
      list.erase(it);
    } else {
      cache.insert(line);
      if (list.size() == 4) list.pop_back();
    }
    list.insert(list.begin(), line);
  }
}

}  // namespace
}  // namespace microtools::sim
