#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "asmparse/asmparse.hpp"
#include "support/error.hpp"
#include "test_helpers.hpp"
#include "verify/cfg.hpp"
#include "verify/dataflow.hpp"
#include "verify/verify.hpp"

namespace microtools::verify {
namespace {

bool hasRule(const VerifyReport& report, const std::string& rule) {
  return std::any_of(report.diagnostics.begin(), report.diagnostics.end(),
                     [&](const Diagnostic& d) { return d.rule == rule; });
}

std::string rulesOf(const VerifyReport& report) {
  std::string out;
  for (const Diagnostic& d : report.diagnostics) out += d.rule + " ";
  return out;
}

/// The creator-shaped movaps load loop used throughout (unroll 1).
const char* kGoodKernel =
    "\t.globl microkernel\n"
    "microkernel:\n"
    "\tmovslq %edi, %rdi\n"
    "\txor %eax, %eax\n"
    ".L6:\n"
    "\tmovaps (%rsi), %xmm0\n"
    "\tadd $16, %rsi\n"
    "\tadd $1, %eax\n"
    "\tsub $4, %rdi\n"
    "\tjge .L6\n"
    "\tret\n";

VerifyOptions withContext(std::int64_t n, std::size_t bytes,
                          std::size_t alignment = 4096,
                          std::size_t offset = 0, int arrays = 1) {
  VerifyOptions o;
  o.arrayCount = arrays;
  LaunchContext ctx;
  ctx.tripCount = n;
  for (int a = 0; a < arrays; ++a) ctx.arrays.push_back({bytes, alignment, offset});
  o.context = ctx;
  return o;
}

// -- CFG ---------------------------------------------------------------------

TEST(VerifyCfg, GoodKernelHasLoopAndNoErrors) {
  asmparse::Program p = asmparse::parseAssembly(kGoodKernel);
  Cfg cfg = buildCfg(p);
  EXPECT_TRUE(std::all_of(cfg.reachable.begin(), cfg.reachable.end(),
                          [](bool b) { return b; }));
  LoopScan scan = findLoops(p, cfg);
  ASSERT_EQ(scan.loops.size(), 1u);
  const LoopInfo& loop = scan.loops[0];
  EXPECT_EQ(loop.condition, isa::Condition::GE);
  ASSERT_TRUE(loop.inductionReg);
  EXPECT_EQ(loop.inductionReg->index, isa::kRdi);
  ASSERT_TRUE(loop.delta);
  EXPECT_EQ(*loop.delta, -4);
  ASSERT_TRUE(loop.boundImm);
  EXPECT_EQ(*loop.boundImm, 0);

  VerifyReport report = verifyProgram(p, VerifyOptions{.arrayCount = 1});
  EXPECT_TRUE(report.ok()) << rulesOf(report);
}

TEST(VerifyCfg, UnreachableInstructionWarns) {
  VerifyReport r = verifyAssembly(
      "f:\n xor %eax, %eax\n ret\n mov $1, %r10\n ret\n");
  EXPECT_TRUE(hasRule(r, "MT-CFG01"));
  EXPECT_TRUE(r.ok());  // warning only
}

TEST(VerifyCfg, FallOffEndIsError) {
  VerifyReport r = verifyAssembly("f:\n xor %eax, %eax\n add $1, %eax\n");
  EXPECT_TRUE(hasRule(r, "MT-CFG04"));
  EXPECT_FALSE(r.ok());
}

TEST(VerifyCfg, LoopMovingAwayFromBoundIsError) {
  // add instead of sub: %rdi grows, jge never falls through.
  VerifyReport r = verifyAssembly(
      "f:\n xor %eax, %eax\n"
      ".L1:\n add $4, %rdi\n jge .L1\n ret\n");
  EXPECT_TRUE(hasRule(r, "MT-CFG02"));
  EXPECT_FALSE(r.ok());
}

TEST(VerifyCfg, LoopWithUnchangedInductionIsError) {
  VerifyReport r = verifyAssembly(
      "f:\n xor %eax, %eax\n"
      ".L1:\n add $1, %eax\n cmp $10, %rdi\n jl .L1\n ret\n");
  EXPECT_TRUE(hasRule(r, "MT-CFG02"));
}

TEST(VerifyCfg, InvariantFlagsLoopIsError) {
  VerifyReport r = verifyAssembly(
      "f:\n xor %eax, %eax\n cmp $1, %rdi\n"
      ".L1:\n add $1, %eax\n jge .L1\n ret\n");
  EXPECT_TRUE(hasRule(r, "MT-CFG02"));
}

TEST(VerifyCfg, JneLoopTerminationNotProvable) {
  VerifyReport r = verifyAssembly(
      "f:\n xor %eax, %eax\n"
      ".L1:\n sub $3, %rdi\n jne .L1\n ret\n");
  EXPECT_TRUE(hasRule(r, "MT-CFG03"));
  EXPECT_TRUE(r.ok());
}

TEST(VerifyCfg, CountUpLoopWithRegisterBoundVerifies) {
  VerifyReport r = verifyAssembly(
      "f:\n xor %eax, %eax\n xor %r10, %r10\n"
      ".L1:\n add $1, %eax\n add $4, %r10\n cmp %rdi, %r10\n jl .L1\n ret\n");
  EXPECT_TRUE(r.ok()) << rulesOf(r);
}

// -- ABI ---------------------------------------------------------------------

TEST(VerifyAbi, CalleeSavedClobberIsError) {
  VerifyReport r = verifyAssembly(
      "f:\n xor %eax, %eax\n mov $7, %rbx\n ret\n");
  EXPECT_TRUE(hasRule(r, "MT-ABI01"));
  EXPECT_FALSE(r.ok());
}

TEST(VerifyAbi, StackPointerWriteIsError) {
  VerifyReport r = verifyAssembly(
      "f:\n xor %eax, %eax\n add $8, %rsp\n ret\n");
  EXPECT_TRUE(hasRule(r, "MT-ABI02"));
}

TEST(VerifyAbi, RedZoneStoreIsAllowed) {
  VerifyReport r = verifyAssembly(
      "f:\n xor %eax, %eax\n mov %rax, -8(%rsp)\n ret\n");
  EXPECT_FALSE(hasRule(r, "MT-ABI03")) << rulesOf(r);
}

TEST(VerifyAbi, StoreBelowRedZoneIsError) {
  VerifyReport r = verifyAssembly(
      "f:\n xor %eax, %eax\n mov %rax, -136(%rsp)\n ret\n");
  EXPECT_TRUE(hasRule(r, "MT-ABI03"));
}

TEST(VerifyAbi, StoreAboveStackPointerIsError) {
  // (%rsp) and above holds the return address / caller frame.
  VerifyReport r = verifyAssembly(
      "f:\n xor %eax, %eax\n mov %rax, (%rsp)\n ret\n");
  EXPECT_TRUE(hasRule(r, "MT-ABI03"));
}

TEST(VerifyAbi, MissingReturnValueWarns) {
  VerifyReport r = verifyAssembly("f:\n add $16, %rsi\n ret\n");
  EXPECT_TRUE(hasRule(r, "MT-ABI04"));
  EXPECT_TRUE(r.ok());
}

// -- dataflow ----------------------------------------------------------------

TEST(VerifyDataflow, UninitializedAddressRegisterIsError) {
  VerifyReport r = verifyAssembly(
      "f:\n xor %eax, %eax\n movss (%r10), %xmm0\n ret\n");
  EXPECT_TRUE(hasRule(r, "MT-DF01"));
  EXPECT_FALSE(r.ok());
}

TEST(VerifyDataflow, UninitializedDataRegisterIsWarning) {
  // Storing an uninitialized %xmm0 is the creator's store-kernel idiom.
  VerifyReport r = verifyAssembly(
      "f:\n xor %eax, %eax\n movaps %xmm0, (%rsi)\n ret\n");
  EXPECT_TRUE(hasRule(r, "MT-DF02"));
  EXPECT_TRUE(r.ok());
}

TEST(VerifyDataflow, BranchOnUnsetFlagsIsError) {
  // mov does not set flags, so the branch consumes undefined flags.
  VerifyReport r = verifyAssembly(
      "f:\n mov $0, %rax\n jge .L2\n"
      ".L2:\n ret\n");
  EXPECT_TRUE(hasRule(r, "MT-DF01"));
}

TEST(VerifyDataflow, DeadStoreIsWarning) {
  VerifyReport r = verifyAssembly(
      "f:\n xor %eax, %eax\n mov $5, %rdx\n ret\n");
  EXPECT_TRUE(hasRule(r, "MT-DF03"));
  EXPECT_TRUE(r.ok());
}

TEST(VerifyDataflow, UnusedLoadIsDistinctWarning) {
  VerifyReport r = verifyAssembly(
      "f:\n xor %eax, %eax\n movss (%rsi), %xmm3\n ret\n");
  EXPECT_TRUE(hasRule(r, "MT-DF04"));
  EXPECT_FALSE(hasRule(r, "MT-DF03"));
  EXPECT_TRUE(r.ok());
}

TEST(VerifyDataflow, ZeroIdiomDoesNotReadItsDestination) {
  // pxor %xmm0,%xmm0 then store: no MT-DF02 for %xmm0.
  VerifyReport r = verifyAssembly(
      "f:\n xor %eax, %eax\n pxor %xmm0, %xmm0\n"
      " movups %xmm0, (%rsi)\n ret\n");
  EXPECT_FALSE(hasRule(r, "MT-DF02")) << rulesOf(r);
}

TEST(VerifyDataflow, DefUseMetadataCoversCompareAndBranch) {
  asmparse::Program p = asmparse::parseAssembly(
      "f:\n cmp $4, %rdi\n jge .L\n.L:\n ret\n");
  DefUse cmp = defUse(p.instructions[0]);
  EXPECT_TRUE(cmp.uses.has(isa::gpr(isa::kRdi)));
  EXPECT_FALSE(cmp.defs.has(isa::gpr(isa::kRdi)));
  EXPECT_TRUE(cmp.defs.has(RegSet::kFlags));
  DefUse jge = defUse(p.instructions[1]);
  EXPECT_TRUE(jge.uses.has(RegSet::kFlags));
  EXPECT_TRUE(jge.defs.empty());
}

// -- memory bounds / alignment ----------------------------------------------

TEST(VerifyMemory, GoodKernelInBounds) {
  // n = 262144 elements of 4 bytes over a 1 MiB array: the canonical
  // explore geometry. One trailing stride lands in the slack.
  VerifyReport r =
      verifyAssembly(kGoodKernel, withContext(262144, 1 << 20));
  EXPECT_TRUE(r.ok()) << rulesOf(r);
  EXPECT_FALSE(hasRule(r, "MT-MEM01"));
  EXPECT_FALSE(hasRule(r, "MT-MEM02"));
}

TEST(VerifyMemory, TripCountClosedFormMatchesSimulation) {
  // For several trip counts, brute-force the jge loop and derive the exact
  // furthest byte; the verifier must agree bit-for-bit: the geometry one
  // byte short of the furthest access errors, the exact geometry passes.
  for (std::int64_t n : {1, 3, 4, 5, 16, 17, 63, 64}) {
    std::int64_t rdi = n, offset = 0, maxEnd = 0, guard = 0;
    do {
      maxEnd = std::max(maxEnd, offset + 16);  // movaps (%rsi)
      offset += 16;
      rdi -= 4;
      ASSERT_LT(++guard, 1000);
    } while (rdi >= 0);

    // Shrink the slack to zero so `bytes` is the exact boundary.
    VerifyOptions exact = withContext(n, static_cast<std::size_t>(maxEnd));
    exact.context->slackBytes = 0;
    VerifyReport ok = verifyAssembly(kGoodKernel, exact);
    EXPECT_FALSE(hasRule(ok, "MT-MEM01")) << "n=" << n << " " << rulesOf(ok);

    VerifyOptions tight =
        withContext(n, static_cast<std::size_t>(maxEnd - 1));
    tight.context->slackBytes = 0;
    VerifyReport bad = verifyAssembly(kGoodKernel, tight);
    EXPECT_TRUE(hasRule(bad, "MT-MEM01")) << "n=" << n;
  }
}

TEST(VerifyMemory, OutOfBoundsStrideIsError) {
  // Stride 64 with an r0 decrement of 4 covers 16x the array extent.
  VerifyReport r = verifyAssembly(
      "\t.globl microkernel\n"
      "microkernel:\n"
      "\tmovslq %edi, %rdi\n"
      "\txor %eax, %eax\n"
      ".L6:\n"
      "\tmovaps (%rsi), %xmm0\n"
      "\tadd $64, %rsi\n"
      "\tadd $1, %eax\n"
      "\tsub $4, %rdi\n"
      "\tjge .L6\n"
      "\tret\n",
      withContext(262144, 1 << 20));
  EXPECT_TRUE(hasRule(r, "MT-MEM01"));
  EXPECT_FALSE(r.ok());
}

TEST(VerifyMemory, NegativeDisplacementBeforeArrayStartIsError) {
  VerifyReport r = verifyAssembly(
      "f:\n xor %eax, %eax\n movss -4(%rsi), %xmm0\n ret\n",
      withContext(16, 64));
  EXPECT_TRUE(hasRule(r, "MT-MEM01"));
}

TEST(VerifyMemory, UnalignedMovapsIsError) {
  // Base offset 4 makes the 16-byte-aligned access unprovable (and wrong).
  VerifyReport r = verifyAssembly(kGoodKernel,
                                  withContext(262144, 1 << 20, 4096, 4));
  EXPECT_TRUE(hasRule(r, "MT-MEM02"));
  EXPECT_FALSE(r.ok());
}

TEST(VerifyMemory, WeakBaseAlignmentIsError) {
  VerifyReport r =
      verifyAssembly(kGoodKernel, withContext(262144, 1 << 20, 8, 0));
  EXPECT_TRUE(hasRule(r, "MT-MEM02"));
}

TEST(VerifyMemory, MovupsNeedsNoAlignmentProof) {
  VerifyReport r = verifyAssembly(
      "f:\n"
      "\tmovslq %edi, %rdi\n"
      "\txor %eax, %eax\n"
      ".L6:\n"
      "\tmovups (%rsi), %xmm0\n"
      "\tadd $16, %rsi\n"
      "\tadd $1, %eax\n"
      "\tsub $4, %rdi\n"
      "\tjge .L6\n"
      "\tret\n",
      withContext(262144, 1 << 20, 4096, 4));
  EXPECT_FALSE(hasRule(r, "MT-MEM02")) << rulesOf(r);
}

TEST(VerifyMemory, UnknownAddressIsWarningOnly) {
  VerifyReport r = verifyAssembly(
      "f:\n xor %eax, %eax\n movss 4096, %xmm0\n ret\n",
      withContext(16, 64));
  EXPECT_TRUE(hasRule(r, "MT-MEM03"));
  EXPECT_TRUE(r.ok());
}

TEST(VerifyMemory, NoContextSkipsBoundsRules) {
  VerifyReport r = verifyAssembly(
      "f:\n xor %eax, %eax\n movss 4096, %xmm0\n ret\n");
  EXPECT_FALSE(hasRule(r, "MT-MEM03"));
}

// -- parse / reporting -------------------------------------------------------

TEST(VerifyReporting, ParseFailureBecomesDiagnostic) {
  VerifyReport r = verifyAssembly("f:\n\tbogus %rax\n");
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.diagnostics[0].rule, "MT-PARSE");
  EXPECT_EQ(r.diagnostics[0].line, 2u);
  EXPECT_EQ(r.diagnostics[0].column, 2u);
  EXPECT_FALSE(r.ok());
}

TEST(VerifyReporting, UnknownLabelBecomesDiagnostic) {
  VerifyReport r = verifyAssembly("f:\n xor %eax, %eax\n jge .Lmissing\n ret\n");
  EXPECT_TRUE(hasRule(r, "MT-PARSE"));
}

TEST(VerifyReporting, ShortSummaryGroupsRules) {
  VerifyReport r = verifyAssembly(
      "f:\n mov $7, %rbx\n movss (%rsi), %xmm3\n ret\n");
  std::string s = r.shortSummary();
  EXPECT_NE(s.find("E:"), std::string::npos) << s;
  EXPECT_NE(s.find("MT-ABI01"), std::string::npos) << s;
  EXPECT_NE(s.find("W:"), std::string::npos) << s;
  EXPECT_EQ(s.find(','), std::string::npos) << "must stay CSV-safe: " << s;
  VerifyReport clean = verifyAssembly("f:\n xor %eax, %eax\n ret\n");
  EXPECT_EQ(clean.shortSummary(), "ok");
}

TEST(VerifyReporting, RenderTextIncludesPositionsAndRuleIds) {
  VerifyReport r = verifyAssembly("f:\n mov $7, %rbx\n ret\n");
  std::string text = renderText(r, "bad.s");
  EXPECT_NE(text.find("bad.s:2"), std::string::npos) << text;
  EXPECT_NE(text.find("[MT-ABI01]"), std::string::npos) << text;
  EXPECT_NE(text.find("error"), std::string::npos) << text;
}

TEST(VerifyReporting, RenderJsonLinesIsOneObjectPerDiagnostic) {
  VerifyReport r = verifyAssembly("f:\n mov $7, %rbx\n ret\n");
  std::string json = renderJsonLines(r, "bad.s");
  EXPECT_NE(json.find("\"rule\":\"MT-ABI01\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"severity\":\"error\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"line\":2"), std::string::npos) << json;
  // Located diagnostics carry the documented column field too.
  EXPECT_NE(json.find("\"column\":2"), std::string::npos) << json;
}

TEST(VerifyReporting, ParseDiagnosticsAlwaysCarryAColumn) {
  // Every MT-PARSE flavor must locate the offending token: an unknown
  // mnemonic, a duplicate label, and an unknown branch target.
  for (const char* bad : {"f:\n\tbogus %rax\n",            //
                          "f:\nf:\n ret\n",                //
                          "f:\n jge .Lmissing\n ret\n"}) {
    VerifyReport r = verifyAssembly(bad);
    ASSERT_TRUE(hasRule(r, "MT-PARSE")) << bad;
    for (const Diagnostic& d : r.diagnostics) {
      if (d.rule != "MT-PARSE") continue;
      EXPECT_GT(d.line, 0u) << bad;
      EXPECT_GT(d.column, 0u) << bad;
      std::string json = renderJsonLines(r, "bad.s");
      EXPECT_NE(json.find("\"column\":"), std::string::npos) << json;
    }
  }
}

// -- the five seeded-bad fixtures of the issue -------------------------------

TEST(VerifySeededFixtures, AllFiveBadKernelsAreFlagged) {
  struct Fixture {
    const char* name;
    std::string asmText;
    const char* rule;
  };
  const std::string goodLoop =
      ".L6:\n movaps (%rsi), %xmm0\n add $16, %rsi\n add $1, %eax\n"
      " sub $4, %rdi\n jge .L6\n ret\n";
  std::vector<Fixture> fixtures = {
      {"clobbered rbx",
       "f:\n movslq %edi, %rdi\n xor %eax, %eax\n mov $0, %rbx\n" + goodLoop,
       "MT-ABI01"},
      {"uninitialized read",
       "f:\n movslq %edi, %rdi\n xor %eax, %eax\n"
       ".L6:\n movaps (%r10), %xmm0\n add $16, %r10\n add $1, %eax\n"
       " sub $4, %rdi\n jge .L6\n ret\n",
       "MT-DF01"},
      {"dead store",
       "f:\n movslq %edi, %rdi\n xor %eax, %eax\n"
       ".L6:\n mov $3, %r10\n movaps (%rsi), %xmm0\n add $16, %rsi\n"
       " add $1, %eax\n sub $4, %rdi\n jge .L6\n ret\n",
       "MT-DF03"},
      {"out-of-bounds stride",
       "f:\n movslq %edi, %rdi\n xor %eax, %eax\n"
       ".L6:\n movaps (%rsi), %xmm0\n add $4096, %rsi\n add $1, %eax\n"
       " sub $4, %rdi\n jge .L6\n ret\n",
       "MT-MEM01"},
      {"unaligned movaps",
       "f:\n movslq %edi, %rdi\n xor %eax, %eax\n"
       ".L6:\n movaps 4(%rsi), %xmm0\n add $16, %rsi\n add $1, %eax\n"
       " sub $4, %rdi\n jge .L6\n ret\n",
       "MT-MEM02"},
  };
  for (const Fixture& f : fixtures) {
    VerifyReport r = verifyAssembly(f.asmText, withContext(262144, 1 << 20));
    EXPECT_TRUE(hasRule(r, f.rule))
        << f.name << " should raise " << f.rule << "; got " << rulesOf(r);
  }
}

// -- property test: every creator variant verifies clean ---------------------

TEST(VerifyProperty, AllLoadstoreSmallVariantsVerifyStrictClean) {
  // Mirrors examples/descriptions/loadstore_small.xml (movaps load kernel,
  // unroll 1..2) under the default explore geometry.
  auto programs = testing::generate(testing::figure6Xml(1, 2, false));
  ASSERT_FALSE(programs.empty());
  for (const auto& program : programs) {
    VerifyOptions options;
    options.arrayCount = program.arrayCount;
    LaunchContext ctx;
    ctx.tripCount = (1 << 20) / 4;
    for (int a = 0; a < program.arrayCount; ++a) {
      ctx.arrays.push_back({1 << 20, 4096, 0});
    }
    options.context = ctx;
    VerifyReport report = verifyAssembly(program.asmText, options);
    EXPECT_TRUE(report.ok())
        << program.name << ": " << renderText(report, program.name);
  }
}

TEST(VerifyProperty, StoreSwapAndMultiArrayVariantsHaveNoErrors) {
  // Figure-6 store variants (uninitialized xmm stores are warnings, not
  // errors) and two-array movss kernels, unroll up to 4 (one unrolled
  // stride of slack is guaranteed for strides up to a page).
  for (const std::string& xml :
       {testing::figure6Xml(1, 4, true), testing::movssLoadXml(1, 4, 2)}) {
    for (const auto& program : testing::generate(xml)) {
      VerifyOptions options;
      options.arrayCount = program.arrayCount;
      LaunchContext ctx;
      ctx.tripCount = (1 << 20) / 4;
      for (int a = 0; a < program.arrayCount; ++a) {
        ctx.arrays.push_back({1 << 20, 4096, 0});
      }
      options.context = ctx;
      VerifyReport report = verifyAssembly(program.asmText, options);
      EXPECT_TRUE(report.ok())
          << program.name << ": " << renderText(report, program.name);
    }
  }
}

}  // namespace
}  // namespace microtools::verify
