#include <gtest/gtest.h>

#include "sim/memsys.hpp"
#include "support/error.hpp"

namespace microtools::sim {
namespace {

MachineConfig testConfig() {
  MachineConfig m = nehalemX5650DualSocket();
  return m;
}

TEST(MemSys, ColdLoadComesFromRam) {
  MemorySystem ms(testConfig());
  EXPECT_EQ(ms.peekLevel(0, 0x1000), MemLevel::Ram);
  AccessResult r = ms.load(0, 0x1000, 8, 0);
  EXPECT_EQ(r.level, MemLevel::Ram);
  EXPECT_EQ(ms.levelCount(MemLevel::Ram), 1u);
}

TEST(MemSys, RepeatLoadHitsL1) {
  MemorySystem ms(testConfig());
  ms.load(0, 0x1000, 8, 0);
  AccessResult r = ms.load(0, 0x1000, 8, 100000);
  EXPECT_EQ(r.level, MemLevel::L1);
  EXPECT_EQ(r.completeCycle, 100000u + testConfig().l1.latencyCycles);
}

TEST(MemSys, LatencyOrderedByLevel) {
  MachineConfig cfg = testConfig();
  cfg.prefetchDegree = 0;  // isolate demand latencies
  MemorySystem ms(cfg);
  std::uint64_t t = 1000000;
  AccessResult ram = ms.load(0, 0x40000, 8, t);
  // Evict from L1 only: touch enough conflicting lines... simpler: compare
  // fresh addresses per level by pre-inserting.
  ms.touch(0, 0x80000, 64);
  AccessResult l1 = ms.load(0, 0x80000, 8, t);
  EXPECT_LT(l1.completeCycle - t, ram.completeCycle - t);
}

TEST(MemSys, PeekLevelDoesNotMutate) {
  MemorySystem ms(testConfig());
  EXPECT_EQ(ms.peekLevel(0, 0x9000), MemLevel::Ram);
  EXPECT_EQ(ms.peekLevel(0, 0x9000), MemLevel::Ram);
  EXPECT_EQ(ms.levelCount(MemLevel::Ram), 0u);
  ms.load(0, 0x9000, 8, 0);
  EXPECT_EQ(ms.peekLevel(0, 0x9000), MemLevel::L1);
}

TEST(MemSys, TouchWarmsHierarchy) {
  MemorySystem ms(testConfig());
  ms.touch(0, 0x2000, 256);
  EXPECT_EQ(ms.peekLevel(0, 0x2000), MemLevel::L1);
  EXPECT_EQ(ms.peekLevel(0, 0x2000 + 255), MemLevel::L1);
}

TEST(MemSys, PrivateCachesAreSeparatePerCore) {
  MemorySystem ms(testConfig());
  ms.load(0, 0x3000, 8, 0);
  // Same socket, different core: L1/L2 miss but the shared L3 hits.
  EXPECT_EQ(ms.peekLevel(1, 0x3000), MemLevel::L3);
  // Other socket: its own L3 misses entirely.
  int remoteCore = testConfig().coresPerSocket;  // first core of socket 1
  EXPECT_EQ(ms.peekLevel(remoteCore, 0x3000), MemLevel::Ram);
}

TEST(MemSys, SplitLineAccessPenalized) {
  MemorySystem ms(testConfig());
  ms.touch(0, 0x4000, 256);
  std::uint64_t t = 10000;
  AccessResult aligned = ms.load(0, 0x4000, 16, t);
  AccessResult split = ms.load(0, 0x4000 + 56, 16, t);  // crosses a line
  EXPECT_FALSE(aligned.splitLine);
  EXPECT_TRUE(split.splitLine);
  EXPECT_GT(split.completeCycle, aligned.completeCycle);
}

TEST(MemSys, SequentialStreamTrainsPrefetcher) {
  MachineConfig cfg = testConfig();
  MemorySystem ms(cfg);
  std::uint64_t cycle = 0;
  for (int i = 0; i < 64; ++i) {
    ms.load(0, 0x100000 + static_cast<std::uint64_t>(i) * 64, 16, cycle);
    cycle += 20;
  }
  EXPECT_GT(ms.prefetchCount(), 0u);
}

TEST(MemSys, PrefetchedStreamIsFasterThanRandom) {
  MachineConfig cfg = testConfig();
  // Sequential pass.
  MemorySystem seq(cfg);
  std::uint64_t seqTotal = 0;
  std::uint64_t cycle = 1000;
  for (int i = 0; i < 256; ++i) {
    AccessResult r =
        seq.load(0, 0x100000 + static_cast<std::uint64_t>(i) * 64, 16, cycle);
    seqTotal += r.completeCycle - cycle;
    cycle = r.completeCycle;
  }
  // Strided pass touching the same number of distinct lines, too far apart
  // for the next-line streamer.
  MemorySystem rnd(cfg);
  std::uint64_t rndTotal = 0;
  cycle = 1000;
  for (int i = 0; i < 256; ++i) {
    AccessResult r = rnd.load(
        0, 0x100000 + static_cast<std::uint64_t>(i) * 64 * 37, 16, cycle);
    rndTotal += r.completeCycle - cycle;
    cycle = r.completeCycle;
  }
  EXPECT_LT(seqTotal, rndTotal);
}

TEST(MemSys, ChannelBandwidthQueuesUnderLoad) {
  MachineConfig cfg = testConfig();
  cfg.prefetchDegree = 0;
  MemorySystem ms(cfg);
  // Many simultaneous misses at the same cycle must queue on the three
  // channels: completion times must strictly increase beyond the first
  // channelCount requests.
  std::vector<std::uint64_t> completions;
  for (int i = 0; i < 12; ++i) {
    AccessResult r = ms.load(0, 0x200000 + static_cast<std::uint64_t>(i) * 4096,
                             8, 500);
    completions.push_back(r.completeCycle);
  }
  std::uint64_t firstBatchMax =
      *std::max_element(completions.begin(), completions.begin() + 3);
  std::uint64_t lastBatchMin =
      *std::min_element(completions.end() - 3, completions.end());
  EXPECT_GT(lastBatchMin, firstBatchMax);
}

TEST(MemSys, NumaRemoteAccessSlower) {
  MachineConfig cfg = testConfig();
  cfg.prefetchDegree = 0;
  MemorySystem ms(cfg);
  ms.setHomeSocket(0x10000000, 0x1000000, 0);
  ms.setHomeSocket(0x20000000, 0x1000000, 1);
  std::uint64_t t = 100;
  AccessResult local = ms.load(0, 0x10000000, 8, t);   // core 0, socket 0
  AccessResult remote = ms.load(0, 0x20000000, 8, t);  // core 0 -> socket 1
  EXPECT_GT(remote.completeCycle, local.completeCycle);
}

TEST(MemSys, HomeSocketValidation) {
  MemorySystem ms(testConfig());
  EXPECT_THROW(ms.setHomeSocket(0, 100, 7), McError);
  EXPECT_THROW(ms.setHomeSocket(0, 100, -1), McError);
}

TEST(MemSys, CoreIdValidation) {
  MemorySystem ms(testConfig());
  EXPECT_THROW(ms.load(99, 0, 8, 0), McError);
  EXPECT_THROW(ms.load(-1, 0, 8, 0), McError);
  EXPECT_THROW(ms.socketOfCore(99), McError);
}

TEST(MemSys, SocketMapping) {
  MemorySystem ms(testConfig());  // 2 sockets x 6 cores
  EXPECT_EQ(ms.socketOfCore(0), 0);
  EXPECT_EQ(ms.socketOfCore(5), 0);
  EXPECT_EQ(ms.socketOfCore(6), 1);
  EXPECT_EQ(ms.socketOfCore(11), 1);
}

TEST(MemSys, ClearCachesDropsWarmState) {
  MemorySystem ms(testConfig());
  ms.load(0, 0x5000, 8, 0);
  EXPECT_EQ(ms.peekLevel(0, 0x5000), MemLevel::L1);
  ms.clearCaches();
  EXPECT_EQ(ms.peekLevel(0, 0x5000), MemLevel::Ram);
  EXPECT_EQ(ms.levelCount(MemLevel::Ram), 0u);
}

TEST(MemSys, StoreAllocatesLikeLoad) {
  MemorySystem ms(testConfig());
  AccessResult r = ms.store(0, 0x6000, 16, 0);
  EXPECT_EQ(r.level, MemLevel::Ram);
  EXPECT_EQ(ms.peekLevel(0, 0x6000), MemLevel::L1);
}

TEST(MemSys, FrequencyScalingChangesOffcoreCycles) {
  // Figure 13's mechanism: at a lower core clock, the same DRAM
  // nanoseconds are fewer core cycles.
  MachineConfig fast = testConfig();
  fast.coreGHz = 2.67;
  MachineConfig slow = testConfig();
  slow.coreGHz = 1.60;
  fast.prefetchDegree = slow.prefetchDegree = 0;
  MemorySystem msFast(fast);
  MemorySystem msSlow(slow);
  std::uint64_t tFast = msFast.load(0, 0x7000, 8, 0).completeCycle;
  std::uint64_t tSlow = msSlow.load(0, 0x7000, 8, 0).completeCycle;
  EXPECT_GT(tFast, tSlow);  // more core cycles at the higher clock
}

}  // namespace
}  // namespace microtools::sim
