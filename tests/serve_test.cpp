// Tests of the campaign service: the length-prefixed wire protocol (framing,
// codec, hostile-peer handling), the serve daemon's lease scheduler
// (cache-first acquire, backpressure, dead-worker re-issue), and the
// end-to-end sharded campaign whose canonical report must be byte-identical
// to a single-process run.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "launcher/explore.hpp"
#include "launcher/remote_store.hpp"
#include "launcher/serve.hpp"
#include "launcher/sim_backend.hpp"
#include "launcher/wire.hpp"
#include "sim/arch.hpp"
#include "support/error.hpp"
#include "support/socket.hpp"
#include "test_helpers.hpp"

namespace microtools::launcher {
namespace {

namespace fs = std::filesystem;

using testing::figure6Xml;

std::string freshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  return dir;
}

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "missing file: " << path;
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

/// Per-factory invocation counters shared by every backend it builds.
struct BackendCounters {
  std::atomic<int> constructed{0};
  std::atomic<int> invokes{0};
};

/// SimBackend wrapper that counts constructions and invocations — the proof
/// that warm reruns perform zero backend work.
class CountingBackend final : public Backend {
 public:
  explicit CountingBackend(std::shared_ptr<BackendCounters> counters)
      : counters_(std::move(counters)),
        inner_(sim::nehalemX5650DualSocket()) {
    counters_->constructed++;
  }

  std::string name() const override { return "counting-sim"; }
  std::unique_ptr<KernelHandle> load(const std::string& asmText,
                                     const std::string& fn) override {
    return inner_.load(asmText, fn);
  }
  InvokeResult invoke(KernelHandle& kernel,
                      const KernelRequest& request) override {
    counters_->invokes++;
    return inner_.invoke(kernel, request);
  }
  double timerOverheadCycles() const override {
    return inner_.timerOverheadCycles();
  }
  std::vector<InvokeResult> invokeFork(KernelHandle& kernel,
                                       const KernelRequest& request,
                                       int processes, int calls,
                                       PinPolicy policy) override {
    return inner_.invokeFork(kernel, request, processes, calls, policy);
  }
  InvokeResult invokeOpenMp(KernelHandle& kernel,
                            const KernelRequest& request, int threads,
                            int repetitions) override {
    return inner_.invokeOpenMp(kernel, request, threads, repetitions);
  }
  void reset() override { inner_.reset(); }

 private:
  std::shared_ptr<BackendCounters> counters_;
  SimBackend inner_;
};

ExploreOptions workerOptions(std::shared_ptr<BackendCounters> counters) {
  ExploreOptions options;
  options.descriptionText = figure6Xml(1, 8, false);  // 8 unroll variants
  options.arrayBytes = 16 * 1024;
  options.campaign.jobs = 2;
  options.campaign.protocol.innerRepetitions = 1;
  options.campaign.protocol.outerRepetitions = 3;
  options.campaign.maxCv = 0.05;
  options.campaign.maxRepetitions = 10;
  options.backendFactory = [counters](int) {
    return std::make_unique<CountingBackend>(counters);
  };
  options.backendId = "counting-sim";
  return options;
}

VariantResult okResult(const std::string& name, double min) {
  VariantResult r;
  r.name = name;
  r.status = "ok";
  r.measurement.iterationsPerCall = 257;
  r.measurement.totalCycles = 1000.0;
  r.measurement.cyclesPerIteration =
      stats::Summary{3, min, min + 0.5, min + 0.2, min + 0.1, 0.05, 0.02};
  r.repetitions = 3;
  r.finalCv = 0.02;
  r.converged = true;
  r.attempts = 1;
  return r;
}

// ---------------------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------------------

TEST(Wire, MessageRoundTripPreservesFieldsAndEscapes) {
  wire::Message m;
  m.verb = "store";
  m.fields["key"] = "abc123";
  m.fields["result"] = "line one\nline two\r\nback\\slash";
  m.fields["empty"] = "";
  wire::Message back = wire::decodeMessage(wire::encodeMessage(m));
  EXPECT_EQ(back.verb, "store");
  EXPECT_EQ(back.get("key"), "abc123");
  EXPECT_EQ(back.get("result"), "line one\nline two\r\nback\\slash");
  EXPECT_TRUE(back.has("empty"));
  EXPECT_EQ(back.get("empty"), "");
}

TEST(Wire, MessageRejectsMalformedVerbAndMissingField) {
  EXPECT_THROW(wire::decodeMessage(""), McError);
  EXPECT_THROW(wire::decodeMessage("\nfield value\n"), McError);
  wire::Message m = wire::decodeMessage("ok\n");
  EXPECT_THROW(m.get("absent"), McError);
  EXPECT_THROW(m.getInt("absent"), McError);
}

TEST(Wire, ResultRoundTripIsFullFidelity) {
  VariantResult r = okResult("unroll4\nweird name", 12.75);
  r.sequence = 41;
  r.round = 2;
  r.cached = true;
  r.note = "resume\nnote";
  r.verify = "W:MT-ABI-1";
  r.measurement.counters.valid = true;
  r.measurement.counters.ipc = 1.75;
  r.measurement.counters.l1MissRate = 0.015625;
  VariantResult back = wire::decodeResult(wire::encodeResult(r));
  EXPECT_EQ(back.sequence, 41u);
  EXPECT_EQ(back.round, 2);
  EXPECT_EQ(back.name, "unroll4\nweird name");
  EXPECT_EQ(back.status, "ok");
  EXPECT_TRUE(back.cached);
  EXPECT_EQ(back.note, "resume\nnote");
  EXPECT_EQ(back.verify, "W:MT-ABI-1");
  EXPECT_EQ(back.repetitions, 3);
  EXPECT_EQ(back.attempts, 1);
  EXPECT_TRUE(back.converged);
  EXPECT_EQ(back.measurement.iterationsPerCall, 257u);
  EXPECT_EQ(back.measurement.cyclesPerIteration.count, 3u);
  EXPECT_EQ(back.measurement.cyclesPerIteration.min, 12.75);
  EXPECT_EQ(back.measurement.cyclesPerIteration.max, 13.25);
  EXPECT_EQ(back.measurement.cyclesPerIteration.mean, 12.95);
  EXPECT_TRUE(back.measurement.counters.valid);
  EXPECT_EQ(back.measurement.counters.ipc, 1.75);
  EXPECT_EQ(back.measurement.counters.l1MissRate, 0.015625);
}

TEST(Wire, ResultRoundTripKeepsNonOkStatus) {
  VariantResult r;
  r.sequence = 7;
  r.name = "broken";
  r.status = "timeout";
  r.error = "variant exceeded 100 ms";
  r.converged = false;
  VariantResult back = wire::decodeResult(wire::encodeResult(r));
  EXPECT_EQ(back.status, "timeout");
  EXPECT_EQ(back.error, "variant exceeded 100 ms");
  EXPECT_FALSE(back.converged);
}

TEST(Wire, ResultDecodeRejectsGarbage) {
  EXPECT_THROW(wire::decodeResult(""), McError);
  EXPECT_THROW(wire::decodeResult("sequence -4\n"), McError);
  VariantResult r = okResult("v", 1.0);
  std::string text = wire::encodeResult(r);
  std::string bad = text;
  bad.replace(bad.find("status ok"), 9, "status ??");
  EXPECT_THROW(wire::decodeResult(bad), McError);
}

// ---------------------------------------------------------------------------
// Framing over a real socket
// ---------------------------------------------------------------------------

/// One accepted loopback connection plus the client socket talking to it.
struct SocketPair {
  net::Listener listener;
  net::Socket client;
  net::Socket server;

  SocketPair() : listener("127.0.0.1:0") {
    client = net::connectTo(listener.boundSpec());
    server = listener.accept(2000);
    EXPECT_TRUE(server.valid());
  }
};

TEST(Wire, FramedRoundTripOverSocket) {
  SocketPair pair;
  wire::Message m;
  m.verb = "probe";
  m.fields["key"] = "deadbeef";
  wire::sendMessage(pair.client, m);
  std::optional<wire::Message> got = wire::recvMessage(pair.server);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->verb, "probe");
  EXPECT_EQ(got->get("key"), "deadbeef");
}

TEST(Wire, CleanCloseBeforeFrameIsEndOfStream) {
  SocketPair pair;
  pair.client.close();
  EXPECT_FALSE(wire::recvMessage(pair.server).has_value());
}

TEST(Wire, TornFrameThrows) {
  SocketPair pair;
  // Announce 100 bytes, deliver 5, vanish: the reader must throw (a torn
  // frame), not report a clean end of stream.
  unsigned char prefix[4] = {0, 0, 0, 100};
  pair.client.sendAll(prefix, sizeof(prefix));
  pair.client.sendAll("hello", 5);
  pair.client.close();
  EXPECT_THROW(wire::recvMessage(pair.server), McError);
}

TEST(Wire, OversizedLengthPrefixThrows) {
  SocketPair pair;
  unsigned char prefix[4] = {0xff, 0xff, 0xff, 0xff};  // 4 GiB "payload"
  pair.client.sendAll(prefix, sizeof(prefix));
  EXPECT_THROW(wire::recvMessage(pair.server), McError);
}

TEST(Wire, ZeroLengthFrameThrows) {
  SocketPair pair;
  unsigned char prefix[4] = {0, 0, 0, 0};
  pair.client.sendAll(prefix, sizeof(prefix));
  EXPECT_THROW(wire::recvMessage(pair.server), McError);
}

// ---------------------------------------------------------------------------
// Daemon protocol: handshake, leases, re-issue
// ---------------------------------------------------------------------------

/// Raw wire client for protocol-level tests (no CampaignRunner involved).
struct RawClient {
  net::Socket socket;

  explicit RawClient(const std::string& address, int version = wire::kVersion,
                     const std::string& worker = "raw") {
    socket = net::connectTo(address);
    wire::Message hello;
    hello.verb = "hello";
    hello.fields["version"] = std::to_string(version);
    hello.fields["worker"] = worker;
    hello.fields["jobs"] = "1";
    wire::sendMessage(socket, hello);
  }

  wire::Message call(const wire::Message& m) {
    wire::sendMessage(socket, m);
    std::optional<wire::Message> r = wire::recvMessage(socket);
    if (!r) throw McError("daemon closed");
    return *r;
  }

  wire::Message recv() {
    std::optional<wire::Message> r = wire::recvMessage(socket);
    if (!r) throw McError("daemon closed");
    return *r;
  }

  wire::Message acquire(const std::string& campaign, const std::string& key,
                        int sequence) {
    wire::Message m;
    m.verb = "acquire";
    m.fields["campaign"] = campaign;
    m.fields["key"] = key;
    m.fields["sequence"] = std::to_string(sequence);
    m.fields["round"] = "0";
    m.fields["name"] = "v" + std::to_string(sequence);
    return call(m);
  }
};

class ServeFixture : public ::testing::Test {
 protected:
  void startServer(ServeOptions options = {}) {
    if (options.cacheDir == ServeOptions{}.cacheDir) {
      options.cacheDir = freshDir("serve_proto_cache");
    }
    options.drainTimeoutMs = 200;  // protocol tests abandon leases on purpose
    server_ = std::make_unique<ServeServer>(std::move(options));
    server_->start();
  }

  void TearDown() override {
    if (server_) {
      server_->requestStop();
      server_->wait();
    }
  }

  std::unique_ptr<ServeServer> server_;
};

TEST_F(ServeFixture, VersionMismatchIsRejectedWithError) {
  startServer();
  RawClient client(server_->boundAddress(), wire::kVersion + 1);
  wire::Message response = client.recv();
  EXPECT_EQ(response.verb, "error");
  EXPECT_NE(response.get("message").find("version"), std::string::npos);
  // The daemon closes the connection after the error frame.
  EXPECT_FALSE(wire::recvMessage(client.socket).has_value());
}

TEST_F(ServeFixture, HandshakeThenLeaseStoreHitCycle) {
  startServer();
  RawClient client(server_->boundAddress());
  EXPECT_EQ(client.recv().verb, "welcome");

  wire::Message begin;
  begin.verb = "begin";
  begin.fields["campaign"] = "c1";
  begin.fields["variants"] = "2";
  EXPECT_EQ(client.call(begin).verb, "ok");

  // Cold acquire: a lease.
  wire::Message lease = client.acquire("c1", "k1", 0);
  ASSERT_EQ(lease.verb, "lease");
  std::string leaseId = lease.get("lease");

  // Publish the measurement against the lease, then re-acquire: a hit.
  wire::Message store;
  store.verb = "store";
  store.fields["key"] = "k1";
  store.fields["result"] = wire::encodeResult(okResult("v0", 4.0));
  store.fields["lease"] = leaseId;
  EXPECT_EQ(client.call(store).verb, "ok");
  wire::Message hit = client.acquire("c1", "k1", 0);
  ASSERT_EQ(hit.verb, "hit");
  VariantResult decoded = wire::decodeResult(hit.get("result"));
  EXPECT_EQ(decoded.name, "v0");
  EXPECT_EQ(decoded.measurement.cyclesPerIteration.min, 4.0);

  ServeSummary s = server_->summary();
  EXPECT_EQ(s.leases, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.reissues, 0u);
}

TEST_F(ServeFixture, AcquireWithoutBeginIsAnError) {
  startServer();
  RawClient client(server_->boundAddress());
  EXPECT_EQ(client.recv().verb, "welcome");
  EXPECT_EQ(client.acquire("ghost", "k1", 0).verb, "error");
}

TEST_F(ServeFixture, SecondWorkerWaitsWhileLeaseIsLive) {
  startServer();
  RawClient a(server_->boundAddress(), wire::kVersion, "a");
  RawClient b(server_->boundAddress(), wire::kVersion, "b");
  EXPECT_EQ(a.recv().verb, "welcome");
  EXPECT_EQ(b.recv().verb, "welcome");
  wire::Message begin;
  begin.verb = "begin";
  begin.fields["campaign"] = "c1";
  begin.fields["variants"] = "1";
  EXPECT_EQ(a.call(begin).verb, "ok");
  EXPECT_EQ(a.acquire("c1", "k1", 0).verb, "lease");
  EXPECT_EQ(b.acquire("c1", "k1", 0).verb, "wait");
}

TEST_F(ServeFixture, DeadWorkerLeaseIsReissuedAndMeasuredExactlyOnce) {
  startServer();
  {
    // Worker A takes the lease for k1 and dies without acking it.
    RawClient a(server_->boundAddress(), wire::kVersion, "doomed");
    EXPECT_EQ(a.recv().verb, "welcome");
    wire::Message begin;
    begin.verb = "begin";
    begin.fields["campaign"] = "c1";
    begin.fields["variants"] = "1";
    EXPECT_EQ(a.call(begin).verb, "ok");
    EXPECT_EQ(a.acquire("c1", "k1", 0).verb, "lease");
  }  // disconnect releases the lease server-side

  // Worker B asks for the same slice: it must get a fresh lease (counted as
  // a re-issue), measure it, and publish. A third acquire is then a hit —
  // the slice was re-measured exactly once.
  RawClient b(server_->boundAddress(), wire::kVersion, "successor");
  EXPECT_EQ(b.recv().verb, "welcome");
  wire::Message begin;
  begin.verb = "begin";
  begin.fields["campaign"] = "c1";
  begin.fields["variants"] = "1";
  EXPECT_EQ(b.call(begin).verb, "ok");

  // The disconnect races the re-acquire: poll until the daemon has reaped
  // the dead connection's lease.
  wire::Message response;
  for (int attempt = 0; attempt < 100; ++attempt) {
    response = b.acquire("c1", "k1", 0);
    if (response.verb == "lease") break;
    ASSERT_EQ(response.verb, "wait");
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(response.verb, "lease");

  wire::Message store;
  store.verb = "store";
  store.fields["key"] = "k1";
  store.fields["result"] = wire::encodeResult(okResult("v0", 4.0));
  store.fields["lease"] = response.get("lease");
  EXPECT_EQ(b.call(store).verb, "ok");
  EXPECT_EQ(b.acquire("c1", "k1", 0).verb, "hit");

  ServeSummary s = server_->summary();
  EXPECT_EQ(s.leases, 2u);    // original + re-issue
  EXPECT_EQ(s.reissues, 1u);  // the re-grant after the disconnect
  EXPECT_EQ(s.hits, 1u);      // exactly one measurement ended up stored
}

TEST_F(ServeFixture, ExpiredLeaseDeadlineIsReissued) {
  ServeOptions options;
  options.leaseDeadlineMs = 50;
  startServer(std::move(options));
  RawClient a(server_->boundAddress(), wire::kVersion, "slow");
  RawClient b(server_->boundAddress(), wire::kVersion, "fast");
  EXPECT_EQ(a.recv().verb, "welcome");
  EXPECT_EQ(b.recv().verb, "welcome");
  wire::Message begin;
  begin.verb = "begin";
  begin.fields["campaign"] = "c1";
  begin.fields["variants"] = "1";
  EXPECT_EQ(a.call(begin).verb, "ok");
  EXPECT_EQ(a.acquire("c1", "k1", 0).verb, "lease");
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  // A stays connected but missed its ack deadline: B gets the slice.
  EXPECT_EQ(b.acquire("c1", "k1", 0).verb, "lease");
  EXPECT_EQ(server_->summary().reissues, 1u);
}

TEST_F(ServeFixture, BackpressureDefersBeyondTheLeaseCap) {
  ServeOptions options;
  options.maxLeasesPerWorker = 2;
  startServer(std::move(options));
  RawClient client(server_->boundAddress());
  EXPECT_EQ(client.recv().verb, "welcome");
  wire::Message begin;
  begin.verb = "begin";
  begin.fields["campaign"] = "c1";
  begin.fields["variants"] = "3";
  EXPECT_EQ(client.call(begin).verb, "ok");
  EXPECT_EQ(client.acquire("c1", "k1", 0).verb, "lease");
  EXPECT_EQ(client.acquire("c1", "k2", 1).verb, "lease");
  EXPECT_EQ(client.acquire("c1", "k3", 2).verb, "defer");
}

// ---------------------------------------------------------------------------
// End-to-end sharded campaign
// ---------------------------------------------------------------------------

/// Runs `workers` concurrent `runExplore --connect` workers against a fresh
/// daemon, returning the daemon's canonical ranked report text.
struct ShardedRun {
  std::string report;
  std::string csv;
  ServeSummary summary;
  std::vector<int> constructed;  ///< backends built per worker
  std::vector<std::size_t> measured;
};

ShardedRun runSharded(int workers, const std::string& cacheDir) {
  ServeOptions serveOptions;
  serveOptions.cacheDir = cacheDir;
  std::string outDir = freshDir("serve_out_" + std::to_string(workers));
  fs::create_directories(outDir);
  serveOptions.csvPath = outDir + "/campaign.csv";
  serveOptions.reportPath = outDir + "/report.csv";
  ServeServer server(serveOptions);
  server.start();

  ShardedRun run;
  run.constructed.resize(static_cast<std::size_t>(workers));
  run.measured.resize(static_cast<std::size_t>(workers));
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      try {
        auto counters = std::make_shared<BackendCounters>();
        ExploreOptions options = workerOptions(counters);
        options.connectAddr = server.boundAddress();
        options.workerName = "w" + std::to_string(w);
        ExploreResult result = runExplore(options);
        run.constructed[static_cast<std::size_t>(w)] =
            counters->constructed.load();
        run.measured[static_cast<std::size_t>(w)] = result.measured;
      } catch (const McError& e) {
        ADD_FAILURE() << "worker " << w << " failed: " << e.message();
        failures++;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  server.requestStop();
  server.wait();
  run.summary = server.summary();
  if (failures.load() == 0) {
    run.report = readFile(serveOptions.reportPath);
    run.csv = readFile(serveOptions.csvPath);
  }
  return run;
}

TEST(ServeEndToEnd, FourWorkersMatchSingleProcessByteForByte) {
  // Reference: the plain single-process exhaustive sweep, no cache.
  auto refCounters = std::make_shared<BackendCounters>();
  ExploreOptions reference = workerOptions(refCounters);
  reference.useCache = false;
  ExploreResult referenceResult = runExplore(reference);
  ASSERT_GT(referenceResult.results.size(), 2u);
  std::ostringstream referenceReport;
  topKReport(referenceResult.results, 0).write(referenceReport);

  ShardedRun run = runSharded(4, freshDir("serve_e2e_cache"));
  EXPECT_EQ(run.report, referenceReport.str());
  EXPECT_EQ(run.summary.campaignsFinalized, 1u);
  EXPECT_EQ(run.summary.workers.size(), 4u);

  // The campaign was genuinely sharded: each unique slice measured exactly
  // once across the fleet (one lease per measurement, no re-issues).
  std::size_t totalMeasured = 0;
  for (std::size_t m : run.measured) totalMeasured += m;
  EXPECT_EQ(totalMeasured, static_cast<std::size_t>(run.summary.leases));
  EXPECT_GT(run.summary.leases, 0u);
  EXPECT_LE(run.summary.leases, referenceResult.results.size());
  EXPECT_EQ(run.summary.reissues, 0u);
}

/// Drops the trailing (",cached") cell of every report line, so warm and
/// cold reports — identical except for cache provenance — can be compared.
std::string stripLastColumn(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::string out;
  while (std::getline(in, line)) {
    std::size_t comma = line.rfind(',');
    out += comma == std::string::npos ? line : line.substr(0, comma);
    out += '\n';
  }
  return out;
}

TEST(ServeEndToEnd, WarmRerunAnyWorkerCountDoesZeroBackendWork) {
  std::string cacheDir = freshDir("serve_warm_cache");
  ShardedRun cold = runSharded(2, cacheDir);
  ASSERT_FALSE(cold.report.empty());

  for (int workers : {1, 3}) {
    ShardedRun warm = runSharded(workers, cacheDir);
    // Identical ranking and metrics; only the cached column flips to 1.
    EXPECT_EQ(stripLastColumn(warm.report), stripLastColumn(cold.report))
        << workers << " warm worker(s)";
    EXPECT_EQ(warm.summary.leases, 0u);
    for (int constructed : warm.constructed) {
      EXPECT_EQ(constructed, 0) << "warm worker built a backend";
    }
    for (std::size_t measured : warm.measured) EXPECT_EQ(measured, 0u);
  }
}

TEST(ServeEndToEnd, CanonicalCsvIsSequenceOrderedAndComplete) {
  ShardedRun run = runSharded(2, freshDir("serve_csv_cache"));
  ASSERT_FALSE(run.csv.empty());
  std::istringstream in(run.csv);
  std::string line;
  std::vector<std::string> rows;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    rows.push_back(line);
  }
  ASSERT_GT(rows.size(), 1u);
  std::vector<std::string> header = CampaignRunner::csvHeader();
  EXPECT_EQ(csv::parseLine(rows.front()), header);
  auto cachedIt = std::find(header.begin(), header.end(), "cached");
  ASSERT_NE(cachedIt, header.end());
  std::size_t cachedCol =
      static_cast<std::size_t>(cachedIt - header.begin());
  for (std::size_t i = 1; i < rows.size(); ++i) {
    std::vector<std::string> cells = csv::parseLine(rows[i]);
    ASSERT_EQ(cells.size(), header.size());
    EXPECT_EQ(cells[0], std::to_string(i - 1)) << "row out of order";
    EXPECT_EQ(cells[cachedCol], "0") << "cold row flagged cached";
  }
}

TEST(ServeEndToEnd, UnixSocketTransportWorks) {
  std::string sockDir = freshDir("serve_unix");
  fs::create_directories(sockDir);
  ServeOptions serveOptions;
  serveOptions.listen = "unix:" + sockDir + "/serve.sock";
  serveOptions.cacheDir = freshDir("serve_unix_cache");
  ServeServer server(serveOptions);
  server.start();
  EXPECT_EQ(server.boundAddress(), serveOptions.listen);

  auto counters = std::make_shared<BackendCounters>();
  ExploreOptions options = workerOptions(counters);
  options.connectAddr = server.boundAddress();
  ExploreResult result = runExplore(options);
  EXPECT_GT(result.results.size(), 0u);
  EXPECT_EQ(result.measured, result.results.size());
  server.requestStop();
  server.wait();
  EXPECT_EQ(server.summary().campaignsFinalized, 1u);
}

TEST(ServeEndToEnd, HalvingSearchIsRejectedInConnectMode) {
  ServeOptions serveOptions;
  serveOptions.cacheDir = freshDir("serve_halving_cache");
  ServeServer server(serveOptions);
  server.start();
  auto counters = std::make_shared<BackendCounters>();
  ExploreOptions options = workerOptions(counters);
  options.connectAddr = server.boundAddress();
  options.search = SearchMode::Halving;
  EXPECT_THROW(runExplore(options), McError);
  server.requestStop();
  server.wait();
}

TEST(ServeEndToEnd, GracefulStopRefusesNewLeasesButServesHits) {
  ServeOptions serveOptions;
  serveOptions.cacheDir = freshDir("serve_stop_cache");
  serveOptions.drainTimeoutMs = 200;
  ServeServer server(serveOptions);
  server.start();

  RawClient client(server.boundAddress());
  EXPECT_EQ(client.recv().verb, "welcome");
  wire::Message begin;
  begin.verb = "begin";
  begin.fields["campaign"] = "c1";
  begin.fields["variants"] = "2";
  EXPECT_EQ(client.call(begin).verb, "ok");
  wire::Message lease = client.acquire("c1", "k1", 0);
  ASSERT_EQ(lease.verb, "lease");
  wire::Message store;
  store.verb = "store";
  store.fields["key"] = "k1";
  store.fields["result"] = wire::encodeResult(okResult("v0", 4.0));
  store.fields["lease"] = lease.get("lease");
  EXPECT_EQ(client.call(store).verb, "ok");

  server.requestStop();
  // During the drain the daemon still answers, still serves cache hits, but
  // refuses to grant fresh leases.
  EXPECT_EQ(client.acquire("c1", "k1", 0).verb, "hit");
  EXPECT_EQ(client.acquire("c1", "k2", 1).verb, "error");
  client.socket.close();
  server.wait();
}

}  // namespace
}  // namespace microtools::launcher
