#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "asmparse/asmparse.hpp"
#include "launcher/sim_backend.hpp"
#include "sim/core.hpp"
#include "test_helpers.hpp"

// The fast path of the simulated backend (steady-state extrapolation inside
// CoreSim + warm-invoke memoization in SimBackend) promises *bit-identical*
// results to full cycle simulation — not approximately equal. These tests
// drive both paths over the interesting kernel shapes (loadstore, strided
// scalar loads, alignment offsets, L1-resident and streaming working sets)
// and in every invoke mode (plain, fork, OpenMP), comparing exact doubles.

namespace microtools::launcher {
namespace {

using testing::figure6Xml;
using testing::generate;
using testing::movssLoadXml;

SimBackendOptions exactOptions() {
  SimBackendOptions o;
  o.steadyState = false;
  o.memoize = false;
  return o;
}

KernelRequest requestFor(std::uint64_t bytes, std::uint64_t offset,
                         std::uint64_t elementBytes) {
  KernelRequest request;
  request.arrays.push_back(ArraySpec{bytes, 4096, offset});
  request.n = static_cast<int>(bytes / elementBytes);
  return request;
}

/// Runs `invokes` identical calls on a fresh backend; returns the results.
std::vector<InvokeResult> runSequence(const std::string& asmText,
                                      const KernelRequest& request,
                                      SimBackendOptions options,
                                      int invokes,
                                      std::uint64_t* replayed = nullptr) {
  SimBackend backend(sim::nehalemX5650DualSocket(), options);
  auto kernel = backend.load(asmText, "microkernel");
  std::vector<InvokeResult> out;
  for (int i = 0; i < invokes; ++i) {
    out.push_back(backend.invoke(*kernel, request));
  }
  if (replayed) *replayed = backend.replayedInvokes();
  return out;
}

void expectBitIdentical(const std::vector<InvokeResult>& fast,
                        const std::vector<InvokeResult>& exact) {
  ASSERT_EQ(fast.size(), exact.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    // Exact comparison on purpose: same bits, not "close enough".
    EXPECT_EQ(fast[i].tscCycles, exact[i].tscCycles) << "invoke " << i;
    EXPECT_EQ(fast[i].iterations, exact[i].iterations) << "invoke " << i;
  }
}

// ---------------------------------------------------------------------------
// Property: fast path == --sim-exact, across kernels/sizes/alignments
// ---------------------------------------------------------------------------

TEST(SimBackendExactness, LoadStoreKernelsAllSizesAndAlignments) {
  struct Case {
    std::string xml;
    std::uint64_t elementBytes;
    std::uint64_t offset;
  };
  // movaps needs 16-byte alignment; the scalar movss kernel probes the
  // odd-offset space.
  std::vector<Case> cases = {
      {figure6Xml(1, 1, false), 16, 0},   {figure6Xml(4, 4, false), 16, 16},
      {figure6Xml(8, 8, false), 16, 32},  {movssLoadXml(1, 1), 4, 0},
      {movssLoadXml(2, 2), 4, 4},
  };
  // 16 KiB stays L1-resident (steady-state extrapolation territory); 1 MiB
  // streams through L2/L3 (warm-invoke memoization territory).
  std::vector<std::uint64_t> sizes = {16 * 1024, 1 << 20};
  for (const Case& c : cases) {
    std::string asmText = generate(c.xml).at(0).asmText;
    for (std::uint64_t bytes : sizes) {
      KernelRequest request = requestFor(bytes, c.offset, c.elementBytes);
      std::vector<InvokeResult> fast =
          runSequence(asmText, request, SimBackendOptions{}, 12);
      std::vector<InvokeResult> exact =
          runSequence(asmText, request, exactOptions(), 12);
      SCOPED_TRACE("bytes=" + std::to_string(bytes) +
                   " offset=" + std::to_string(c.offset));
      expectBitIdentical(fast, exact);
    }
  }
}

TEST(SimBackendExactness, ForkMode) {
  std::string asmText = generate(figure6Xml(2, 2, false)).at(0).asmText;
  KernelRequest request = requestFor(64 * 1024, 0, 16);
  SimBackend fast(sim::nehalemX5650DualSocket(), SimBackendOptions{});
  SimBackend exact(sim::nehalemX5650DualSocket(), exactOptions());
  auto kf = fast.load(asmText, "microkernel");
  auto ke = exact.load(asmText, "microkernel");
  std::vector<InvokeResult> rf =
      fast.invokeFork(*kf, request, 2, 2, PinPolicy::Scatter);
  std::vector<InvokeResult> re =
      exact.invokeFork(*ke, request, 2, 2, PinPolicy::Scatter);
  expectBitIdentical(rf, re);
  // Second identical fork: served from the pure-function memo, same bits.
  expectBitIdentical(fast.invokeFork(*kf, request, 2, 2, PinPolicy::Scatter),
                     re);
}

TEST(SimBackendExactness, OpenMpMode) {
  std::string asmText = generate(movssLoadXml(1, 1)).at(0).asmText;
  KernelRequest request = requestFor(128 * 1024, 0, 4);
  SimBackend fast(sim::nehalemX5650DualSocket(), SimBackendOptions{});
  SimBackend exact(sim::nehalemX5650DualSocket(), exactOptions());
  auto kf = fast.load(asmText, "microkernel");
  auto ke = exact.load(asmText, "microkernel");
  InvokeResult rf = fast.invokeOpenMp(*kf, request, 4, 2);
  InvokeResult re = exact.invokeOpenMp(*ke, request, 4, 2);
  EXPECT_EQ(rf.tscCycles, re.tscCycles);
  EXPECT_EQ(rf.iterations, re.iterations);
  // Memoized repeat.
  InvokeResult again = fast.invokeOpenMp(*kf, request, 4, 2);
  EXPECT_EQ(again.tscCycles, re.tscCycles);
}

// ---------------------------------------------------------------------------
// The optimizations must actually fire (not just silently fall back)
// ---------------------------------------------------------------------------

TEST(SimBackendExactness, SteadyStateExtrapolationFires) {
  // L1-resident movaps loop, pre-warmed: after the confirmation window the
  // core must stop simulating and extrapolate the remaining iterations.
  std::string asmText =
      "microkernel:\n"
      " mov %rdi, %rax\n"
      ".L6:\n"
      " movaps (%rsi), %xmm0\n"
      " add $16, %rsi\n"
      " sub $4, %rdi\n"
      " jg .L6\n"
      " ret\n";
  asmparse::Program program = asmparse::parseAssembly(asmText);
  sim::MachineConfig machine = sim::nehalemX5650DualSocket();
  std::uint64_t base = 1ull << 32;
  int n = 4096;  // 16 KiB of floats, 1024 loop iterations

  auto runWith = [&](bool enabled, sim::MemorySystem& ms) {
    ms.touch(0, base, static_cast<std::uint64_t>(n) * 4 + 64);
    sim::CoreSim core(machine, ms, 0);
    sim::SteadyStateOptions ss;
    ss.enabled = enabled;
    core.setSteadyState(ss);
    return core.run(program, n, {base});
  };
  sim::MemorySystem msFast(machine), msExact(machine);
  sim::RunResult fast = runWith(true, msFast);
  sim::RunResult exact = runWith(false, msExact);

  EXPECT_GT(fast.extrapolatedFrom, 0u);
  EXPECT_GT(fast.extrapolatedIterations, 0u);
  EXPECT_EQ(exact.extrapolatedFrom, 0u);
  EXPECT_EQ(fast.tscCycles, exact.tscCycles);
  EXPECT_EQ(fast.coreCycles, exact.coreCycles);
  EXPECT_EQ(fast.iterations, exact.iterations);
  // The machine must end up where full simulation would have left it.
  EXPECT_EQ(msFast.stateFingerprint(fast.coreCycles),
            msExact.stateFingerprint(exact.coreCycles));
  EXPECT_EQ(msFast.levelCount(sim::MemLevel::L1),
            msExact.levelCount(sim::MemLevel::L1));
}

TEST(SimBackendExactness, WarmInvokeMemoizationFires) {
  // 1 MiB streaming loadstore: every invoke misses into L2/L3, steady-state
  // extrapolation never confirms — warm-invoke memoization must carry the
  // speedup once the machine state starts cycling.
  std::string asmText = generate(figure6Xml(1, 1, false)).at(0).asmText;
  KernelRequest request = requestFor(1 << 20, 0, 16);
  std::uint64_t replayed = 0;
  std::vector<InvokeResult> fast =
      runSequence(asmText, request, SimBackendOptions{}, 12, &replayed);
  std::vector<InvokeResult> exact =
      runSequence(asmText, request, exactOptions(), 12);
  expectBitIdentical(fast, exact);
  EXPECT_GT(replayed, 0u);
}

// ---------------------------------------------------------------------------
// reset() contract: memoized results must not survive into the cold machine
// ---------------------------------------------------------------------------

TEST(SimBackendReset, ResetWorkerReproducesColdNumbers) {
  std::string asmText = generate(figure6Xml(2, 2, false)).at(0).asmText;
  KernelRequest request = requestFor(1 << 20, 0, 16);

  SimBackend fresh(sim::nehalemX5650DualSocket());
  auto kFresh = fresh.load(asmText, "microkernel");
  std::vector<InvokeResult> cold;
  for (int i = 0; i < 4; ++i) cold.push_back(fresh.invoke(*kFresh, request));

  SimBackend worker(sim::nehalemX5650DualSocket());
  auto kWorker = worker.load(asmText, "microkernel");
  for (int i = 0; i < 8; ++i) worker.invoke(*kWorker, request);  // warm it up
  worker.reset();
  EXPECT_EQ(worker.replayedInvokes(), 0u);
  // A reset worker is indistinguishable from a brand-new backend: the first
  // invokes replay the cold-machine transient, not the memoized warm state.
  std::vector<InvokeResult> after;
  for (int i = 0; i < 4; ++i) after.push_back(worker.invoke(*kWorker, request));
  expectBitIdentical(after, cold);
}

TEST(SimBackendReset, SetMachineInvalidatesMemo) {
  std::string asmText = generate(figure6Xml(1, 1, false)).at(0).asmText;
  KernelRequest request = requestFor(1 << 20, 0, 16);
  sim::MachineConfig machine = sim::nehalemX5650DualSocket();

  SimBackend backend(machine);
  auto kernel = backend.load(asmText, "microkernel");
  for (int i = 0; i < 8; ++i) backend.invoke(*kernel, request);
  backend.setMachine(machine);  // same config, still a full cold reset
  EXPECT_EQ(backend.replayedInvokes(), 0u);

  SimBackend fresh(machine);
  auto kFresh = fresh.load(asmText, "microkernel");
  EXPECT_EQ(backend.invoke(*kernel, request).tscCycles,
            fresh.invoke(*kFresh, request).tscCycles);
}

}  // namespace
}  // namespace microtools::launcher
