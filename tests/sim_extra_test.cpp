// Additional simulator edge-case coverage: branch-condition sweeps, split
// accesses, trace output, frequency conversions and config invariants.

#include <gtest/gtest.h>

#include <cstring>

#include "asmparse/asmparse.hpp"
#include "sim/core.hpp"
#include "sim/machine.hpp"
#include "support/error.hpp"

namespace microtools::sim {
namespace {

RunResult runProgram(const std::string& text, int n = 0,
                     std::vector<std::uint64_t> arrays = {}) {
  MachineConfig machine = nehalemX5650DualSocket();
  MemorySystem ms(machine);
  CoreSim core(machine, ms, 0);
  return core.run(asmparse::parseAssembly(text), n, arrays);
}

// Parameterized sweep over every conditional branch: a count-down loop
// built around the condition must terminate with the architecturally
// correct trip count.
struct BranchCase {
  const char* test;
  int n;
  std::uint64_t expectedIterations;
};

class BranchSemantics : public ::testing::TestWithParam<BranchCase> {};

TEST_P(BranchSemantics, LoopTripCountExact) {
  const BranchCase& c = GetParam();
  std::string text = std::string("f:\n") +
                     " movslq %edi, %rdi\n"
                     " xor %eax, %eax\n"
                     ".L1:\n"
                     " add $1, %eax\n"
                     " sub $1, %rdi\n " +
                     c.test + " .L1\n ret\n";
  EXPECT_EQ(runProgram(text, c.n).iterations, c.expectedIterations)
      << c.test;
}

INSTANTIATE_TEST_SUITE_P(
    ConditionCodes, BranchSemantics,
    ::testing::Values(BranchCase{"jge", 10, 11},  // runs down to -1
                      BranchCase{"jg", 10, 10},
                      BranchCase{"jne", 10, 10},
                      BranchCase{"jnz", 10, 10},
                      BranchCase{"jns", 7, 8},
                      BranchCase{"jg", 1, 1},
                      BranchCase{"jge", 0, 1}));

TEST(BranchSemantics, JsLoopsWhileNegative) {
  // Counter starts negative and increments to zero: js keeps looping while
  // the sub/add result is negative.
  std::string text =
      "f:\n"
      " xor %eax, %eax\n"
      " mov $-5, %rcx\n"
      ".L1:\n"
      " add $1, %eax\n"
      " add $1, %rcx\n"
      " js .L1\n"
      " ret\n";
  EXPECT_EQ(runProgram(text).iterations, 5u);
}

TEST(SplitAccess, UnalignedMovupsCrossesLines) {
  MachineConfig machine = nehalemX5650DualSocket();
  MemorySystem ms(machine);
  ms.touch(0, 0x100000, 4096);
  // 16-byte access at line offset 56 crosses into the next line.
  AccessResult aligned = ms.load(0, 0x100000, 16, 1000);
  AccessResult split = ms.load(0, 0x100000 + 56, 16, 1000);
  EXPECT_FALSE(aligned.splitLine);
  EXPECT_TRUE(split.splitLine);
  EXPECT_EQ(split.completeCycle - aligned.completeCycle,
            static_cast<std::uint64_t>(machine.splitLinePenalty));
}

TEST(Trace, EmitsIssueEvents) {
  MachineConfig machine = nehalemX5650DualSocket();
  MemorySystem ms(machine);
  CoreSim core(machine, ms, 0);
  std::string path = ::testing::TempDir() + "/mt_trace_test.txt";
  std::FILE* f = std::fopen(path.c_str(), "w+");
  ASSERT_NE(f, nullptr);
  core.setTrace(f);
  core.run(asmparse::parseAssembly(
               "f:\n xor %eax, %eax\n add $1, %eax\n ret\n"),
           0, {});
  std::fflush(f);
  std::rewind(f);
  char buffer[256] = {};
  ASSERT_NE(std::fgets(buffer, sizeof buffer, f), nullptr);
  EXPECT_NE(std::strstr(buffer, "ALU issue="), nullptr);
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(Config, TscConversionIdentityAtNominal) {
  MachineConfig m = nehalemX5650DualSocket();
  EXPECT_DOUBLE_EQ(m.coreCyclesToTsc(1000.0), 1000.0);
  m.coreGHz = m.nominalGHz / 2;
  EXPECT_DOUBLE_EQ(m.coreCyclesToTsc(1000.0), 2000.0);
}

TEST(Config, NsConversionRounds) {
  MachineConfig m;
  m.coreGHz = 2.0;
  EXPECT_EQ(m.nsToCoreCycles(10.0), 20u);
  EXPECT_EQ(m.nsToCoreCycles(10.3), 21u);  // rounds to nearest
}

TEST(Config, ChannelOccupancyPositive) {
  for (const std::string& name : machineNames()) {
    MachineConfig m = machineByName(name);
    EXPECT_GE(m.channelOccupancyCycles(), 1u) << name;
    EXPECT_GT(m.totalCores(), 0) << name;
  }
}

TEST(Config, UnknownMachineThrows) {
  EXPECT_THROW(machineByName("itanium"), McError);
}

TEST(MultiCall, ClockMonotoneAcrossBackToBackCalls) {
  // The multi-core runner's `calls` chaining must keep per-call state
  // consistent: iterations scale linearly, cycles stay positive.
  MachineConfig machine = nehalemX5650DualSocket();
  asmparse::Program program = asmparse::parseAssembly(
      "f:\n movslq %edi, %rdi\n xor %eax, %eax\n"
      ".L1:\n movss (%rsi), %xmm0\n add $4, %rsi\n add $1, %eax\n"
      " sub $1, %rdi\n jge .L1\n ret\n");
  for (int calls : {1, 2, 5}) {
    MultiCoreRunner runner(machine);
    CoreWork w;
    w.program = &program;
    w.n = 512;
    w.arrayAddrs = {0x100000000ull};
    w.calls = calls;
    auto results = runner.run({w});
    EXPECT_EQ(results[0].iterations,
              static_cast<std::uint64_t>(calls) * 513u);
  }
}

TEST(Dispatch, EmptyProgramStillReturns) {
  RunResult r = runProgram("f:\n ret\n");
  EXPECT_EQ(r.iterations, 0u);
  EXPECT_EQ(r.instructions, 1u);
}

TEST(Dispatch, NopsRetireWithoutUops) {
  RunResult r = runProgram("f:\n nop\n nop\n nop\n ret\n");
  EXPECT_EQ(r.instructions, 4u);
  EXPECT_EQ(r.uops, 0u);
}

TEST(FpLogic, XorpsZeroIdiomExecutes) {
  RunResult r = runProgram(
      "f:\n"
      " xorps %xmm1, %xmm1\n"
      " pxor %xmm2, %xmm2\n"
      " mov $3, %rax\n"
      " ret\n");
  EXPECT_EQ(r.iterations, 3u);
}

TEST(Prologue, ArgumentRegistersArriveInOrder) {
  // f(n, a0, a1): return (int)(a1 - a0) via GPR arithmetic on the pointer
  // arguments — verifies rsi/rdx carry the arrays.
  MachineConfig machine = nehalemX5650DualSocket();
  MemorySystem ms(machine);
  CoreSim core(machine, ms, 0);
  RunResult r = core.run(asmparse::parseAssembly(
                             "f:\n"
                             " mov %rdx, %rax\n"
                             " sub %rsi, %rax\n"
                             " ret\n"),
                         0, {1000, 1420});
  EXPECT_EQ(r.iterations, 420u);
}

}  // namespace
}  // namespace microtools::sim
